(* Parameter lenses over Config.t. *)

module Config = Vdram_core.Config
module Params = Vdram_tech.Params
module Domains = Vdram_circuits.Domains
module Logic_block = Vdram_circuits.Logic_block

type t = {
  name : string;
  get : Config.t -> float;
  set : Config.t -> float -> Config.t;
}

let scale lens f cfg = lens.set cfg (lens.get cfg *. f)

let technology =
  List.map
    (fun (name, get, set) ->
      {
        name;
        get = (fun cfg -> get cfg.Config.tech);
        set = (fun cfg v -> Config.with_tech cfg (set cfg.Config.tech v));
      })
    Params.fields

let with_domains f cfg v =
  Config.with_domains cfg (f cfg.Config.domains v)

let voltages =
  [
    {
      name = "external voltage Vdd";
      get = (fun c -> c.Config.domains.Domains.vdd);
      set = with_domains (fun d v -> { d with Domains.vdd = v });
    };
    {
      name = "internal voltage Vint";
      get = (fun c -> c.Config.domains.Domains.vint);
      set = with_domains (fun d v -> { d with Domains.vint = v });
    };
    {
      name = "bitline voltage";
      get = (fun c -> c.Config.domains.Domains.vbl);
      set = with_domains (fun d v -> { d with Domains.vbl = v });
    };
    {
      name = "wordline voltage Vpp";
      get = (fun c -> c.Config.domains.Domains.vpp);
      set = with_domains (fun d v -> { d with Domains.vpp = v });
    };
    {
      name = "generator efficiency Vint";
      get = (fun c -> c.Config.domains.Domains.eff_int);
      set = with_domains (fun d v -> { d with Domains.eff_int = v });
    };
    {
      name = "generator efficiency bitline voltage";
      get = (fun c -> c.Config.domains.Domains.eff_bl);
      set = with_domains (fun d v -> { d with Domains.eff_bl = v });
    };
    {
      name = "generator efficiency wordline voltage";
      get = (fun c -> c.Config.domains.Domains.eff_pp);
      set = with_domains (fun d v -> { d with Domains.eff_pp = v });
    };
    {
      name = "constant current adder";
      get = (fun c -> c.Config.domains.Domains.i_constant);
      set = with_domains (fun d v -> { d with Domains.i_constant = v });
    };
  ]

(* Aggregate logic lenses scale every block; get returns the scale
   relative to the current configuration (1.0). *)
let logic_aggregate name update =
  {
    name;
    get = (fun _ -> 1.0);
    set = (fun cfg f -> Config.map_logic cfg (update f));
  }

let logic =
  [
    logic_aggregate "number of logic gates" (fun f b ->
        { b with Logic_block.gates = b.Logic_block.gates *. f });
    logic_aggregate "width NFET logic" (fun f b ->
        { b with Logic_block.w_nmos = b.Logic_block.w_nmos *. f });
    logic_aggregate "width PFET logic" (fun f b ->
        { b with Logic_block.w_pmos = b.Logic_block.w_pmos *. f });
    logic_aggregate "logic device density" (fun f b ->
        {
          b with
          Logic_block.layout_density = b.Logic_block.layout_density /. f;
        });
    logic_aggregate "logic wiring density" (fun f b ->
        {
          b with
          Logic_block.wiring_density = b.Logic_block.wiring_density *. f;
        });
    logic_aggregate "transistors per logic gate" (fun f b ->
        {
          b with
          Logic_block.transistors_per_gate =
            b.Logic_block.transistors_per_gate *. f;
        });
  ]

let interface =
  [
    {
      name = "DQ pre-driver load";
      get = (fun c -> c.Config.io_predriver_cap);
      set = (fun c v -> { c with Config.io_predriver_cap = v });
    };
    {
      name = "DQ receiver load";
      get = (fun c -> c.Config.io_receiver_cap);
      set = (fun c v -> { c with Config.io_receiver_cap = v });
    };
    {
      name = "data toggle rate";
      get = (fun c -> c.Config.data_toggle);
      set = (fun c v -> Config.with_data_toggle c v);
    };
    {
      name = "input receiver bias";
      get = (fun c -> c.Config.receiver_bias);
      set = (fun c v -> { c with Config.receiver_bias = v });
    };
  ]

let all = voltages @ technology @ logic @ interface

let find name = List.find_opt (fun l -> l.name = name) all
