(* Monte-Carlo process/vendor spread over the parameter lenses. *)

module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Engine = Vdram_engine.Engine
module Supervise = Vdram_engine.Supervise

type distribution = {
  samples : int;
  failed : int;
  spread : float;
  mean : float;
  std : float;
  min : float;
  max : float;
  p05 : float;
  p95 : float;
}

(* The same deterministic LCG the simulator uses. *)
type rng = { mutable state : int64 }

let next r =
  r.state <-
    Int64.add (Int64.mul r.state 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.shift_right_logical r.state 17)

let next_float r = float_of_int (next r mod 1_000_000) /. 1_000_000.0

(* Lenses that represent physical vendor-to-vendor variation: the
   technology parameters, the internal voltages and efficiencies, and
   the logic aggregates.  The external supply is a specification, not
   a corner. *)
let corner_lenses =
  List.filter
    (fun l -> l.Lenses.name <> "external voltage Vdd")
    (Lenses.technology @ Lenses.voltages @ Lenses.logic)

let run ?engine ?supervisor ?(samples = 200) ?(spread = 0.10) ?(seed = 1)
    ?pattern cfg =
  let engine =
    match engine with Some e -> e | None -> Engine.serial ()
  in
  let pattern =
    match pattern with
    | Some p -> p
    | None -> Pattern.idd4r cfg.Config.spec
  in
  let rng = { state = Int64.of_int (max 1 seed) } in
  let sample () =
    List.fold_left
      (fun acc lens ->
        let f = 1.0 +. (spread *. ((2.0 *. next_float rng) -. 1.0)) in
        (* Efficiencies must stay within (0, 1]. *)
        let f =
          if
            String.length lens.Lenses.name >= 10
            && String.sub lens.Lenses.name 0 10 = "generator "
          then Float.min f (1.0 /. Float.max 1e-9 (lens.Lenses.get acc))
          else f
        in
        Lenses.scale lens f acc)
      cfg corner_lenses
  in
  (* Draw every perturbed configuration first (the LCG is sequential
     state), then fan the pure evaluations out on the pool. *)
  let configs = List.init samples (fun _ -> sample ()) in
  let check i =
    if Float.is_finite i then None else Some "non-finite current"
  in
  (* Warm the seed configuration's extraction, then offer it as the
     delta base: a draw perturbs many lenses, but the groups none of
     them reach (and all supply-energy terms when only efficiencies
     moved) still splice from the seed. *)
  ignore (Engine.current engine cfg pattern);
  let outcomes =
    Supervise.map_jobs ?supervisor engine ~check
      (fun c -> Engine.current ~base:cfg engine c pattern)
      configs
  in
  (* Under supervision a failed draw is excluded from the statistics
     and counted; with no supervisor every outcome is Done. *)
  let values =
    List.filter_map
      (function Supervise.Done v -> Some v | _ -> None)
      outcomes
  in
  let n_ok = List.length values in
  if n_ok = 0 then failwith "Corners.run: every sample failed";
  let sorted = List.sort Float.compare values in
  let n = float_of_int n_ok in
  let mean = List.fold_left ( +. ) 0.0 values /. n in
  let var =
    List.fold_left (fun a v -> a +. ((v -. mean) ** 2.0)) 0.0 values /. n
  in
  let nth q =
    List.nth sorted
      (min (n_ok - 1) (int_of_float (q *. float_of_int (n_ok - 1))))
  in
  {
    samples = n_ok;
    failed = samples - n_ok;
    spread;
    mean;
    std = sqrt var;
    min = List.hd sorted;
    max = List.nth sorted (n_ok - 1);
    p05 = nth 0.05;
    p95 = nth 0.95;
  }

let covers d value = value >= d.min && value <= d.max

let pp ppf d =
  Format.fprintf ppf
    "%d samples%s, +-%.0f%% parameter spread: mean %.1f mA, std %.1f, \
     [%.1f .. %.1f] mA (p05 %.1f, p95 %.1f)"
    d.samples
    (if d.failed > 0 then Printf.sprintf " (%d failed)" d.failed else "")
    (d.spread *. 100.0) (d.mean *. 1e3) (d.std *. 1e3)
    (d.min *. 1e3) (d.max *. 1e3) (d.p05 *. 1e3) (d.p95 *. 1e3)
