(* One-parameter sweeps. *)

module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Report = Vdram_core.Report
module Engine = Vdram_engine.Engine
module Supervise = Vdram_engine.Supervise

type sample = {
  value : float;
  power : float;
  current : float;
  energy_per_bit : float option;
}

type t = {
  lens_name : string;
  config_name : string;
  pattern_name : string;
  samples : sample list;
}

let run ?engine ?supervisor ~lens ~values ?pattern cfg =
  let engine =
    match engine with Some e -> e | None -> Engine.serial ()
  in
  let pattern =
    match pattern with
    | Some p -> p
    | None -> Pattern.idd7_mixed cfg.Config.spec
  in
  (* Warm the nominal extraction, then sweep with it as the delta
     base: every point differs from [cfg] in one lens, so only that
     lens's dirty groups re-extract per point. *)
  ignore (Engine.extraction engine cfg);
  let outcomes =
    Supervise.map_jobs ?supervisor engine ~check:Supervise.finite_report
      (fun value ->
        Engine.eval ~base:cfg engine (lens.Lenses.set cfg value) pattern)
      values
  in
  (* Under supervision a failed point just leaves a gap in the curve;
     its failure record lives on the supervisor. *)
  let samples =
    List.map2
      (fun value outcome ->
        match outcome with
        | Supervise.Done r ->
          Some
            {
              value;
              power = r.Report.power;
              current = r.Report.current;
              energy_per_bit = r.Report.energy_per_bit;
            }
        | Supervise.Failed _ | Supervise.Skipped -> None)
      values outcomes
    |> List.filter_map Fun.id
  in
  {
    lens_name = lens.Lenses.name;
    config_name = cfg.Config.name;
    pattern_name = pattern.Pattern.name;
    samples;
  }

let run_relative ?engine ?supervisor ~lens ~factors ?pattern cfg =
  let nominal = lens.Lenses.get cfg in
  run ?engine ?supervisor ~lens
    ~values:(List.map (fun f -> f *. nominal) factors)
    ?pattern cfg

let pp ppf t =
  Format.fprintf ppf "@[<v>%s sweep on %s (%s)@," t.lens_name t.config_name
    t.pattern_name;
  List.iter
    (fun s ->
      Format.fprintf ppf "  %12.5g -> %s@," s.value
        (Vdram_units.Si.format_eng ~unit_symbol:"W" s.power))
    t.samples;
  Format.fprintf ppf "@]"
