(* Design-choice ablations over the commodity configuration. *)

module Node = Vdram_tech.Node
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Operation = Vdram_core.Operation
module Report = Vdram_core.Report
module Array_geometry = Vdram_floorplan.Array_geometry
module Engine = Vdram_engine.Engine
module Supervise = Vdram_engine.Supervise

type point = {
  label : string;
  power : float;
  energy_per_bit : float;
  activate_energy : float;
  die_area : float;
  array_efficiency : float;
}

let measure ?base ~engine ~label cfg =
  let r = Engine.eval ?base engine cfg (Pattern.idd7_mixed cfg.Config.spec) in
  let g = Engine.geometry engine cfg in
  {
    label;
    power = r.Report.power;
    energy_per_bit = Option.value ~default:0.0 r.Report.energy_per_bit;
    activate_energy = Engine.op_energy ?base engine cfg Operation.Activate;
    die_area = g.Engine.die_area;
    array_efficiency = g.Engine.array_efficiency;
  }

let point_check p =
  if
    List.for_all Float.is_finite
      [
        p.power; p.energy_per_bit; p.activate_energy; p.die_area;
        p.array_efficiency;
      ]
  then None
  else Some (Printf.sprintf "non-finite ablation point %S" p.label)

(* Each ablation first builds its (label, configuration) variants —
   cheap — then fans the model evaluations out on the pool.  Under
   supervision a failed variant is dropped from the listing and
   recorded on the supervisor. *)
let measure_all ?supervisor ?base ~engine variants =
  (match base with
  | Some b -> ignore (Engine.extraction engine b)
  | None -> ());
  Supervise.map_jobs ?supervisor engine ~check:point_check
    (fun (label, cfg) -> measure ?base ~engine ~label cfg)
    variants
  |> List.filter_map (function Supervise.Done p -> Some p | _ -> None)

let build ?engine ?supervisor ~node f =
  let engine =
    match engine with Some e -> e | None -> Engine.serial ()
  in
  let variants =
    f (fun ?page_bits ?bits_per_bitline ?bits_per_lwl ?style ?prefetch () ->
        Config.commodity ?page_bits ?bits_per_bitline ?bits_per_lwl ?style
          ?prefetch ~node ())
  in
  (* Every variant is the commodity configuration at [node] with one
     design choice changed: warm the unmodified configuration's
     extraction and splice each variant's untouched circuit groups
     from it. *)
  measure_all ?supervisor ~base:(Config.commodity ~node ()) ~engine variants

let page_size ?engine ?supervisor ~node ~pages () =
  build ?engine ?supervisor ~node (fun make ->
      let cfg = make () in
      let full = Config.page_bits cfg in
      List.map
        (fun page ->
          let page = min page full in
          ( Printf.sprintf "%d-bit activation (%d B)" page (page / 8),
            Config.with_activation_fraction cfg
              (float_of_int page /. float_of_int full) ))
        pages)

let bitline_length ?engine ?supervisor ~node ~bits () =
  build ?engine ?supervisor ~node (fun make ->
      List.map
        (fun n ->
          (* Shorter bitlines carry proportionally less capacitance. *)
          let cfg = make ~bits_per_bitline:n () in
          let t = cfg.Config.tech in
          let scale =
            float_of_int n
            /. float_of_int
                 (Vdram_tech.Roadmap.generation node)
                   .Vdram_tech.Roadmap.bits_per_bitline
          in
          let cfg =
            Config.with_tech cfg
              {
                t with
                Vdram_tech.Params.c_bitline =
                  t.Vdram_tech.Params.c_bitline *. scale;
              }
          in
          (Printf.sprintf "%d cells per bitline" n, cfg))
        bits)

let bitline_style ?engine ?supervisor ~node () =
  build ?engine ?supervisor ~node (fun make ->
      [
        ("open bitline (6F2-style)", make ~style:Array_geometry.Open ());
        ("folded bitline (8F2-style)", make ~style:Array_geometry.Folded ());
      ])

let prefetch ?engine ?supervisor ~node ~prefetches () =
  build ?engine ?supervisor ~node (fun make ->
      List.map
        (fun n ->
          ( Printf.sprintf "prefetch %dn (core %s)" n
              (Vdram_units.Si.format_eng ~unit_symbol:"Hz"
                 ((Vdram_tech.Roadmap.generation node)
                    .Vdram_tech.Roadmap.datarate
                 /. float_of_int n)),
            make ~prefetch:n () ))
        prefetches)

let subarray_height ?engine ?supervisor ~node ~bits () =
  build ?engine ?supervisor ~node (fun make ->
      List.map
        (fun n ->
          (Printf.sprintf "%d cells per local wordline" n, make ~bits_per_lwl:n ()))
        bits)

let pp_point ppf p =
  Format.fprintf ppf
    "%-32s %8.1f mW %8.1f pJ/bit  act %6.0f pJ  die %5.1f mm^2 (eff %4.1f%%)"
    p.label (p.power *. 1e3)
    (p.energy_per_bit *. 1e12)
    (p.activate_energy *. 1e12)
    (p.die_area *. 1e6)
    (100.0 *. p.array_efficiency)

let pp ppf points =
  Format.fprintf ppf "@[<v>";
  List.iter (fun p -> Format.fprintf ppf "%a@," pp_point p) points;
  Format.fprintf ppf "@]"
