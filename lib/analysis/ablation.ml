(* Design-choice ablations over the commodity configuration. *)

module Node = Vdram_tech.Node
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Model = Vdram_core.Model
module Operation = Vdram_core.Operation
module Report = Vdram_core.Report
module Floorplan = Vdram_floorplan.Floorplan
module Array_geometry = Vdram_floorplan.Array_geometry

type point = {
  label : string;
  power : float;
  energy_per_bit : float;
  activate_energy : float;
  die_area : float;
  array_efficiency : float;
}

let measure ~label cfg =
  let r = Model.pattern_power cfg (Pattern.idd7_mixed cfg.Config.spec) in
  {
    label;
    power = r.Report.power;
    energy_per_bit = Option.value ~default:0.0 r.Report.energy_per_bit;
    activate_energy = Operation.energy cfg Operation.Activate;
    die_area = Floorplan.die_area cfg.Config.floorplan;
    array_efficiency = Floorplan.array_efficiency cfg.Config.floorplan;
  }

let build ~node f = f (fun ?page_bits ?bits_per_bitline ?bits_per_lwl
                           ?style ?prefetch () ->
    Config.commodity ?page_bits ?bits_per_bitline ?bits_per_lwl ?style
      ?prefetch ~node ())

let page_size ~node ~pages =
  build ~node (fun make ->
      let cfg = make () in
      let full = Config.page_bits cfg in
      List.map
        (fun page ->
          let page = min page full in
          measure
            ~label:
              (Printf.sprintf "%d-bit activation (%d B)" page (page / 8))
            (Config.with_activation_fraction cfg
               (float_of_int page /. float_of_int full)))
        pages)

let bitline_length ~node ~bits =
  build ~node (fun make ->
      List.map
        (fun n ->
          (* Shorter bitlines carry proportionally less capacitance. *)
          let cfg = make ~bits_per_bitline:n () in
          let t = cfg.Config.tech in
          let scale =
            float_of_int n
            /. float_of_int
                 (Vdram_tech.Roadmap.generation node)
                   .Vdram_tech.Roadmap.bits_per_bitline
          in
          let cfg =
            Config.with_tech cfg
              {
                t with
                Vdram_tech.Params.c_bitline =
                  t.Vdram_tech.Params.c_bitline *. scale;
              }
          in
          measure ~label:(Printf.sprintf "%d cells per bitline" n) cfg)
        bits)

let bitline_style ~node =
  build ~node (fun make ->
      [
        measure ~label:"open bitline (6F2-style)"
          (make ~style:Array_geometry.Open ());
        measure ~label:"folded bitline (8F2-style)"
          (make ~style:Array_geometry.Folded ());
      ])

let prefetch ~node ~prefetches =
  build ~node (fun make ->
      List.map
        (fun n ->
          measure
            ~label:
              (Printf.sprintf "prefetch %dn (core %s)" n
                 (Vdram_units.Si.format_eng ~unit_symbol:"Hz"
                    ((Vdram_tech.Roadmap.generation node)
                       .Vdram_tech.Roadmap.datarate
                    /. float_of_int n)))
            (make ~prefetch:n ()))
        prefetches)

let subarray_height ~node ~bits =
  build ~node (fun make ->
      List.map
        (fun n ->
          measure
            ~label:(Printf.sprintf "%d cells per local wordline" n)
            (make ~bits_per_lwl:n ()))
        bits)

let pp_point ppf p =
  Format.fprintf ppf
    "%-32s %8.1f mW %8.1f pJ/bit  act %6.0f pJ  die %5.1f mm^2 (eff %4.1f%%)"
    p.label (p.power *. 1e3)
    (p.energy_per_bit *. 1e12)
    (p.activate_energy *. 1e12)
    (p.die_area *. 1e6)
    (100.0 *. p.array_efficiency)

let pp ppf points =
  Format.fprintf ppf "@[<v>";
  List.iter (fun p -> Format.fprintf ppf "%a@," pp_point p) points;
  Format.fprintf ppf "@]"
