(** Power-consumption Pareto (Figure 10) and top-N parameter ranking
    (Table III).

    Each parameter is varied by ±20 % (paper default) around its
    nominal value and the resulting change of pattern power is
    recorded.  A variation span of 40 % would mean power is directly
    proportional to the parameter (only true of the external supply
    voltage, which is therefore excluded from the ranked chart, as in
    the paper). *)

type entry = {
  lens_name : string;
  power_minus : float;  (** W at [1 - variation] *)
  power_plus : float;   (** W at [1 + variation] *)
  span_percent : float;
      (** [(power_plus - power_minus) / nominal * 100] *)
}

type t = {
  config_name : string;
  pattern_name : string;
  nominal_power : float;
  variation : float;
  entries : entry list;  (** sorted by decreasing |span| *)
}

val run :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  ?variation:float ->
  ?lenses:Lenses.t list ->
  ?pattern:Vdram_core.Pattern.t ->
  Vdram_core.Config.t ->
  t
(** Defaults: 20 % variation, all lenses except the external supply
    voltage, and the paper's Idd7-like pattern with half the reads
    replaced by writes.  All evaluations run as one batch on
    [engine]'s pool (default: a fresh serial engine); results are
    bit-identical at any job count.  With [supervisor] the batch runs
    under the supervised runtime: a lens either of whose two perturbed
    evaluations fails (or yields a non-finite power) is dropped from
    the ranking and recorded as failure records instead of aborting
    the run. *)

val top : int -> t -> entry list

val pp : Format.formatter -> t -> unit
(** The tornado listing, largest span first. *)
