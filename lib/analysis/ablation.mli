(** Ablations of the design choices the commodity architecture fixes —
    the trade-offs Section II discusses qualitatively, quantified with
    the model.  Every ablation reports power together with its area
    cost, because "the main trade-off when deciding on DRAM
    architecture is cost". *)

type point = {
  label : string;
  power : float;             (** W, Idd7-like mixed pattern *)
  energy_per_bit : float;    (** J/bit, same pattern *)
  activate_energy : float;   (** J per activate *)
  die_area : float;          (** m^2 *)
  array_efficiency : float;  (** cell area / die area *)
}

val page_size :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  node:Vdram_tech.Node.t -> pages:int list -> unit -> point list
(** Activation granularity: how many bits of the (structural) page a
    row command actually opens.  Smaller activations save row energy
    on random access; motivates the Section V activation schemes. *)

val bitline_length :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  node:Vdram_tech.Node.t -> bits:int list -> unit -> point list
(** Cells per bitline: shorter bitlines swing less capacitance but
    multiply sense-amplifier stripes — energy versus area, the
    fundamental array trade-off. *)

val bitline_style :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  node:Vdram_tech.Node.t -> unit -> point list
(** Folded (8F2-style) versus open (6F2-style) bitline architecture
    at the same node. *)

val prefetch :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  node:Vdram_tech.Node.t -> prefetches:int list -> unit -> point list
(** Serialization ratio at a fixed pin rate: higher prefetch lowers
    the core frequency (the commodity low-cost choice) but widens the
    internal datapath. *)

val subarray_height :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  node:Vdram_tech.Node.t -> bits:int list -> unit -> point list
(** Cells per local wordline: wordline-direction segmentation, the
    dual of {!bitline_length} (costs local wordline driver stripes). *)

val pp_point : Format.formatter -> point -> unit
val pp : Format.formatter -> point list -> unit
