(** CSV emitters for the paper's figure data, for external plotting. *)

val trends : Trends.point list -> string
(** Figures 11–13 as one table: node, year, standard, voltages, data
    rate, timings, die area, density, energy per bit. *)

val sensitivity : Sensitivity.t -> string
(** Figure 10 tornado: lens name, power at −20 %, at +20 %, span %. *)

val verification : Vdram_datasheets.Compare.row list -> string
(** Figures 8/9: point label, vendor min/mean/max, model value per
    node. *)

val ablation : Ablation.point list -> string
(** One ablation sweep: label, power, energy/bit, activate energy,
    die area, array efficiency. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
