(* Parameter sensitivity: vary each lens +-20%, rank by power span. *)

module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Engine = Vdram_engine.Engine
module Supervise = Vdram_engine.Supervise

type entry = {
  lens_name : string;
  power_minus : float;
  power_plus : float;
  span_percent : float;
}

type t = {
  config_name : string;
  pattern_name : string;
  nominal_power : float;
  variation : float;
  entries : entry list;
}

let default_lenses =
  List.filter (fun l -> l.Lenses.name <> "external voltage Vdd") Lenses.all

let run ?engine ?supervisor ?(variation = 0.20) ?(lenses = default_lenses)
    ?pattern cfg =
  let engine =
    match engine with Some e -> e | None -> Engine.serial ()
  in
  let pattern =
    match pattern with
    | Some p -> p
    | None -> Pattern.idd7_mixed cfg.Config.spec
  in
  let nominal = Engine.power engine cfg pattern in
  (* One job per perturbed configuration; the pool evaluates the batch
     and the ordered merge pairs results back up with their lenses. *)
  let perturbed =
    List.concat_map
      (fun lens ->
        [
          Lenses.scale lens (1.0 +. variation) cfg;
          Lenses.scale lens (1.0 -. variation) cfg;
        ])
      lenses
  in
  let check p =
    if Float.is_finite p then None else Some "non-finite power"
  in
  (* Every perturbed configuration is one lens away from [cfg], whose
     extraction the nominal evaluation above just cached: offering it
     as the delta base re-extracts only the lens's dirty groups. *)
  let powers =
    Supervise.map_jobs ?supervisor engine ~check
      (fun c -> Engine.power ~base:cfg engine c pattern)
      perturbed
  in
  (* Each lens owns two consecutive batch slots (+variation then
     -variation); under supervision a lens whose either sample failed
     is dropped from the ranking rather than misaligning the pairing. *)
  let rec pair lenses powers =
    match (lenses, powers) with
    | [], [] -> []
    | ( lens :: lenses,
        Supervise.Done power_plus :: Supervise.Done power_minus :: powers ) ->
      {
        lens_name = lens.Lenses.name;
        power_minus;
        power_plus;
        span_percent = (power_plus -. power_minus) /. nominal *. 100.0;
      }
      :: pair lenses powers
    | lens :: lenses, _ :: _ :: powers ->
      ignore lens;
      pair lenses powers
    | _ -> assert false
  in
  let entries =
    pair lenses powers
    |> List.sort (fun a b ->
           Float.compare (Float.abs b.span_percent) (Float.abs a.span_percent))
  in
  {
    config_name = cfg.Config.name;
    pattern_name = pattern.Pattern.name;
    nominal_power = nominal;
    variation;
    entries;
  }

let top n t = List.filteri (fun i _ -> i < n) t.entries

let pp ppf t =
  Format.fprintf ppf "@[<v>%s | %s | nominal %s | +-%.0f%%@," t.config_name
    t.pattern_name
    (Vdram_units.Si.format_eng ~unit_symbol:"W" t.nominal_power)
    (t.variation *. 100.0);
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-46s %+6.2f%%@," e.lens_name e.span_percent)
    t.entries;
  Format.fprintf ppf "@]"
