(** Generic one-parameter sweeps of pattern power. *)

type sample = {
  value : float;      (** the swept parameter value *)
  power : float;      (** W *)
  current : float;    (** A *)
  energy_per_bit : float option;
}

type t = {
  lens_name : string;
  config_name : string;
  pattern_name : string;
  samples : sample list;
}

val run :
  lens:Lenses.t ->
  values:float list ->
  ?pattern:Vdram_core.Pattern.t ->
  Vdram_core.Config.t ->
  t
(** Evaluate the pattern at each absolute lens value.  The default
    pattern is the Idd7-like mixed loop. *)

val run_relative :
  lens:Lenses.t ->
  factors:float list ->
  ?pattern:Vdram_core.Pattern.t ->
  Vdram_core.Config.t ->
  t
(** Sweep multiplicative factors of the nominal value. *)

val pp : Format.formatter -> t -> unit
