(** Generic one-parameter sweeps of pattern power. *)

type sample = {
  value : float;      (** the swept parameter value *)
  power : float;      (** W *)
  current : float;    (** A *)
  energy_per_bit : float option;
}

type t = {
  lens_name : string;
  config_name : string;
  pattern_name : string;
  samples : sample list;
}

val run :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  lens:Lenses.t ->
  values:float list ->
  ?pattern:Vdram_core.Pattern.t ->
  Vdram_core.Config.t ->
  t
(** Evaluate the pattern at each absolute lens value, batched on
    [engine]'s pool (default: a fresh serial engine).  The default
    pattern is the Idd7-like mixed loop.  With [supervisor] a failed
    or non-finite point leaves a gap in the curve (its failure record
    lives on the supervisor) instead of aborting the sweep. *)

val run_relative :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  lens:Lenses.t ->
  factors:float list ->
  ?pattern:Vdram_core.Pattern.t ->
  Vdram_core.Config.t ->
  t
(** Sweep multiplicative factors of the nominal value. *)

val pp : Format.formatter -> t -> unit
