(** DRAM power trends over the technology roadmap (Section IV.C,
    Figures 11, 12 and 13). *)

type point = {
  node : Vdram_tech.Node.t;
  year : int;
  standard : Vdram_tech.Node.standard;
  (* Figure 11. *)
  vdd : float;
  vint : float;
  vbl : float;
  vpp : float;
  (* Figure 12. *)
  datarate : float;
  core_frequency : float;
  trc : float;
  trcd : float;
  (* Figure 13. *)
  die_area : float;         (** m^2, from the detailed floorplan *)
  density_bits : float;
  energy_per_bit_idd4 : float;
      (** J/bit with the row already open (gapless reads) *)
  energy_per_bit_idd7 : float;
      (** J/bit with interleaved activate/read/write (random access) *)
}

val point : ?engine:Vdram_engine.Engine.t -> Vdram_tech.Node.t -> point

val all :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  unit ->
  point list
(** All fourteen generations, evaluated as one batch on [engine]'s
    pool (default: a fresh serial engine).  With [supervisor] a
    generation whose evaluation fails (or yields a non-finite point)
    is dropped from the trend line and recorded as a failure. *)

val category_shares :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  unit ->
  (Vdram_tech.Node.t * (Vdram_core.Report.category * float) list) list
(** Power share per {!Vdram_core.Report.category} for every
    generation under the Idd7-like pattern — the Section VI
    observation that "the share of power usage is shifting away from
    the DRAM specific cell array circuitry to general logic outside
    of the cell array", as numbers. *)

val reduction_factor : point list -> (Vdram_tech.Node.t -> bool) -> float
(** Average per-generation energy-per-bit (Idd7 pattern) reduction
    factor over the selected consecutive nodes: the paper reports
    ~1.5x per generation for 170→44 nm and ~1.2x for the forecast
    44→16 nm. *)

val pp_point : Format.formatter -> point -> unit
