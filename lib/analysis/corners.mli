(** Manufacturing-spread analysis: Monte-Carlo sampling of the
    technology parameters.

    The paper attributes the large vendor spread of Figures 8/9 to
    "the different technologies used to build the DRAMs and
    differences in the power efficiencies of the approach used by
    different DRAM vendors".  This module quantifies that story:
    every technology parameter, voltage and logic aggregate is drawn
    from a uniform band around its nominal value (deterministic
    generator, reproducible runs) and the resulting current
    distribution is summarised. *)

type distribution = {
  samples : int;           (** draws that completed *)
  failed : int;            (** draws lost to supervised failures *)
  spread : float;          (** half-width of the uniform parameter band *)
  mean : float;            (** A *)
  std : float;             (** A *)
  min : float;
  max : float;
  p05 : float;
  p95 : float;
}

val run :
  ?engine:Vdram_engine.Engine.t ->
  ?supervisor:Vdram_engine.Supervise.t ->
  ?samples:int ->
  ?spread:float ->
  ?seed:int ->
  ?pattern:Vdram_core.Pattern.t ->
  Vdram_core.Config.t ->
  distribution
(** Idd distribution of a pattern under parameter spread.  Defaults:
    200 samples, ±10 % uniform spread, seed 1, the device's Idd4R
    loop (the figure-8/9 measurement with the widest vendor spread).
    Perturbed configurations are drawn sequentially (the generator is
    deterministic), then evaluated as one batch on [engine]'s pool —
    the distribution is identical at any job count.  With [supervisor]
    a failed or non-finite draw is excluded from the statistics and
    counted in [failed]; fails only if {e every} draw fails. *)

val covers : distribution -> float -> bool
(** Whether a current (e.g. a vendor datasheet value) lies within the
    sampled [min, max] range. *)

val pp : Format.formatter -> distribution -> unit
