(** Named getter/setter pairs over a configuration, the handles the
    sensitivity analysis perturbs.

    Lens granularity follows the paper: every technology parameter of
    Table I individually, the internal voltages and generator
    efficiencies, the constant current adder, the miscellaneous-logic
    aggregates (gate count, device widths, densities) and the
    interface loads. *)

type group = Voltage | Technology | Logic | Interface

val group_name : group -> string

val default_range : group -> float * float
(** Default certified multiplicative band per lens group, the range
    [vdram check] certifies when the caller declares no explicit one:
    (0.9, 1.1) for voltages, (0.85, 1.15) for technology, (0.8, 1.25)
    for logic aggregates, (0.8, 1.2) for interface loads. *)

type t = {
  name : string;
  group : group;
  range : float * float;  (** default certified scale-factor range *)
  dirties : Vdram_circuits.Contribution.group list;
      (** circuit groups whose extraction sub-key the lens can touch:
          the staged engine's delta-extraction re-extracts exactly
          these and splices the rest.  Empty for mix-stage-only lenses
          (generator efficiencies, constant current adder, receiver
          bias), whose perturbations re-use the whole base
          extraction. *)
  get : Vdram_core.Config.t -> float;
  set : Vdram_core.Config.t -> float -> Vdram_core.Config.t;
}

val scale : t -> float -> Vdram_core.Config.t -> Vdram_core.Config.t
(** [scale lens f cfg] multiplies the lens value by [f]. *)

val technology : t list
(** The 38 float technology parameters. *)

val voltages : t list
(** Vdd, Vint, Vbl, Vpp, the three generator efficiencies and the
    constant current adder.  Varying a voltage keeps its generator
    efficiency fixed, as in the paper. *)

val logic : t list
(** Aggregates over all miscellaneous logic blocks: number of gates,
    NFET width, PFET width, device (layout) density, wiring density,
    transistors per gate. *)

val interface : t list
(** DQ pre-driver and receiver load, data toggle rate, receiver
    bias. *)

val all : t list
(** Everything above, the Figure 10 parameter set. *)

val find : string -> t option
(** Lens by name. *)
