(* CSV emitters. *)

module Node = Vdram_tech.Node
module Idd = Vdram_datasheets.Idd
module Compare = Vdram_datasheets.Compare

let buffer_csv header rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b (String.concat "," header);
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b (String.concat "," row);
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let f = Printf.sprintf "%.6g"

let trends points =
  buffer_csv
    [ "node_nm"; "year"; "standard"; "vdd_v"; "vint_v"; "vbl_v"; "vpp_v";
      "datarate_mbps"; "core_mhz"; "trc_ns"; "die_mm2"; "density_mbit";
      "energy_per_bit_idd4_pj"; "energy_per_bit_idd7_pj" ]
    (List.map
       (fun (p : Trends.point) ->
         [ f (Node.feature_nm p.Trends.node);
           string_of_int p.Trends.year;
           Node.standard_name p.Trends.standard;
           f p.Trends.vdd; f p.Trends.vint; f p.Trends.vbl; f p.Trends.vpp;
           f (p.Trends.datarate /. 1e6);
           f (p.Trends.core_frequency /. 1e6);
           f (p.Trends.trc *. 1e9);
           f (p.Trends.die_area *. 1e6);
           f (p.Trends.density_bits /. (2.0 ** 20.0));
           f (p.Trends.energy_per_bit_idd4 *. 1e12);
           f (p.Trends.energy_per_bit_idd7 *. 1e12) ])
       points)

let sensitivity (s : Sensitivity.t) =
  buffer_csv
    [ "parameter"; "power_minus_w"; "power_plus_w"; "span_percent" ]
    (List.map
       (fun (e : Sensitivity.entry) ->
         [ "\"" ^ e.Sensitivity.lens_name ^ "\"";
           f e.Sensitivity.power_minus; f e.Sensitivity.power_plus;
           f e.Sensitivity.span_percent ])
       s.Sensitivity.entries)

let verification rows =
  let node_headers =
    match rows with
    | [] -> []
    | r :: _ -> List.map (fun (n, _) -> "model_" ^ n ^ "_ma") r.Compare.model_ma
  in
  buffer_csv
    ([ "point"; "vendor_min_ma"; "vendor_mean_ma"; "vendor_max_ma" ]
    @ node_headers)
    (List.map
       (fun (r : Compare.row) ->
         [ "\"" ^ Idd.label r.Compare.point ^ "\"";
           f (Idd.min_ma r.Compare.point);
           f (Idd.mean_ma r.Compare.point);
           f (Idd.max_ma r.Compare.point) ]
         @ List.map (fun (_, m) -> f m) r.Compare.model_ma)
       rows)

let ablation points =
  buffer_csv
    [ "label"; "power_w"; "energy_per_bit_pj"; "activate_energy_pj";
      "die_mm2"; "array_efficiency" ]
    (List.map
       (fun (p : Ablation.point) ->
         [ "\"" ^ p.Ablation.label ^ "\"";
           f p.Ablation.power;
           f (p.Ablation.energy_per_bit *. 1e12);
           f (p.Ablation.activate_energy *. 1e12);
           f (p.Ablation.die_area *. 1e6);
           f p.Ablation.array_efficiency ])
       points)

let write_file path contents =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents)
