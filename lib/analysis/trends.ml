(* Generation trends: voltages, timings, die area, energy per bit. *)

module Node = Vdram_tech.Node
module Roadmap = Vdram_tech.Roadmap
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Spec = Vdram_core.Spec
module Domains = Vdram_circuits.Domains
module Engine = Vdram_engine.Engine
module Supervise = Vdram_engine.Supervise

type point = {
  node : Node.t;
  year : int;
  standard : Node.standard;
  vdd : float;
  vint : float;
  vbl : float;
  vpp : float;
  datarate : float;
  core_frequency : float;
  trc : float;
  trcd : float;
  die_area : float;
  density_bits : float;
  energy_per_bit_idd4 : float;
  energy_per_bit_idd7 : float;
}

let point ?engine node =
  let engine =
    match engine with Some e -> e | None -> Engine.serial ()
  in
  let cfg = Vdram_configs.Generations.at node in
  let spec = cfg.Config.spec in
  let d = cfg.Config.domains in
  let epb pattern =
    match Engine.energy_per_bit engine cfg pattern with
    | Some e -> e
    | None -> assert false
  in
  {
    node;
    year = Node.year node;
    standard = Node.standard node;
    vdd = d.Domains.vdd;
    vint = d.Domains.vint;
    vbl = d.Domains.vbl;
    vpp = d.Domains.vpp;
    datarate = spec.Spec.datarate;
    core_frequency = Spec.core_clock spec;
    trc = spec.Spec.trc;
    trcd = spec.Spec.trcd;
    die_area = (Engine.geometry engine cfg).Engine.die_area;
    density_bits = spec.Spec.density_bits;
    energy_per_bit_idd4 = epb (Pattern.idd4r spec);
    energy_per_bit_idd7 = epb (Pattern.idd7_mixed spec);
  }

let point_check p =
  let finite =
    List.for_all Float.is_finite
      [
        p.vdd; p.vint; p.vbl; p.vpp; p.datarate; p.core_frequency; p.trc;
        p.trcd; p.die_area; p.density_bits; p.energy_per_bit_idd4;
        p.energy_per_bit_idd7;
      ]
  in
  if finite then None
  else Some (Printf.sprintf "non-finite trend point at %s" (Node.name p.node))

(* A generation whose evaluation fails under supervision is dropped
   from the trend line (failure recorded on the supervisor).  No delta
   base is offered on this batch: successive generations differ in
   nearly every technology field, so a cross-generation splice would
   dirty every circuit group and degrade to the full extraction
   anyway. *)
let all ?engine ?supervisor () =
  let engine =
    match engine with Some e -> e | None -> Engine.serial ()
  in
  Supervise.map_jobs ?supervisor engine ~check:point_check
    (fun node -> point ~engine node)
    Node.all
  |> List.filter_map (function Supervise.Done p -> Some p | _ -> None)

let category_shares ?engine ?supervisor () =
  let engine =
    match engine with Some e -> e | None -> Engine.serial ()
  in
  let check (node, shares) =
    if List.for_all (fun (_, s) -> Float.is_finite s) shares then None
    else Some (Printf.sprintf "non-finite share at %s" (Node.name node))
  in
  Supervise.map_jobs ?supervisor engine ~check
    (fun node ->
      let cfg = Vdram_configs.Generations.at node in
      let r = Engine.eval engine cfg (Pattern.idd7_mixed cfg.Config.spec) in
      let shares =
        List.map
          (fun (c, w) -> (c, w /. r.Vdram_core.Report.power))
          (Vdram_core.Report.by_category r)
      in
      (node, shares))
    Node.all
  |> List.filter_map (function Supervise.Done x -> Some x | _ -> None)

let reduction_factor points select =
  let selected = List.filter (fun p -> select p.node) points in
  match selected with
  | [] | [ _ ] -> 1.0
  | first :: _ ->
    let last = List.nth selected (List.length selected - 1) in
    let generations = List.length selected - 1 in
    (first.energy_per_bit_idd7 /. last.energy_per_bit_idd7)
    ** (1.0 /. float_of_int generations)

let pp_point ppf p =
  Format.fprintf ppf
    "%-5s %d %-4s Vdd %.2f Vint %.2f Vbl %.2f Vpp %.2f | %4.0f Mbps core \
     %3.0f MHz tRC %2.0f ns | die %4.1f mm^2 %5.0f Mb | %7.1f pJ/bit idd4 \
     %7.1f pJ/bit idd7"
    (Node.name p.node) p.year
    (Node.standard_name p.standard)
    p.vdd p.vint p.vbl p.vpp (p.datarate /. 1e6)
    (p.core_frequency /. 1e6) (p.trc *. 1e9) (p.die_area *. 1e6)
    (p.density_bits /. (2.0 ** 20.0))
    (p.energy_per_bit_idd4 *. 1e12)
    (p.energy_per_bit_idd7 *. 1e12)
