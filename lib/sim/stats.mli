(** Counters accumulated by a simulation run. *)

type t = {
  cycles : int;             (** total simulated cycles *)
  activates : int;
  precharges : int;
  reads : int;
  writes : int;
  refreshes : int;          (** refresh commands issued *)
  refresh_row_cycles : int; (** internal row cycles spent refreshing *)
  row_hits : int;
  row_misses : int;
  powerdown_cycles : int;
  selfrefresh_cycles : int;
  requests : int;
  latency_sum : int;        (** sum of request latencies, cycles *)
  latency_max : int;
}

val zero : t

val row_hit_rate : t -> float
val average_latency : t -> float
(** Cycles; 0 when no requests completed. *)

val bits_transferred : t -> bits_per_command:int -> float

val pp : Format.formatter -> t -> unit
