(** Convenience front-end: trace in, energy and performance report
    out. *)

type run = {
  policy : string;
  stats : Stats.t;
  energy : Energy_model.report;
  bandwidth : float;        (** delivered bits per second *)
  average_latency : float;  (** seconds *)
}

val simulate :
  ?page_policy:Controller.page_policy ->
  ?power_down:Controller.power_down ->
  Vdram_core.Config.t ->
  Trace.t ->
  run

val compare_policies :
  Vdram_core.Config.t ->
  Trace.t ->
  (Controller.page_policy * Controller.power_down) list ->
  run list
(** The Hur-et-al.-style study: the same trace under different
    controller policies, trading power against latency. *)

val pp_run : Format.formatter -> run -> unit
