(* Command-trace replay against the bank FSMs + energy integration. *)

module Config = Vdram_core.Config
module Spec = Vdram_core.Spec

type command =
  | Act of int * int
  | Pre of int
  | Prea
  | Rd of int
  | Wr of int
  | Ref
  | Nop

type entry = {
  cycle : int;
  command : command;
}

type violation = {
  at : int;
  message : string;
}

type result = {
  stats : Stats.t;
  energy : Energy_model.report;
  violations : violation list;
}

let run ?(strict = true) (cfg : Config.t) entries =
  let timing = Timing.of_config cfg in
  let nbanks = cfg.Config.spec.Spec.banks in
  let banks = Array.init nbanks (fun _ -> Bank.create timing) in
  let stats = ref Stats.zero in
  let violations = ref [] in
  let last_cycle = ref (-1) in
  let bump f = stats := f !stats in
  let check_bank at b =
    if b < 0 || b >= nbanks then
      raise (Bank.Timing_violation (Printf.sprintf "bad bank %d at %d" b at))
  in
  let apply { cycle; command } =
    if cycle <= !last_cycle && command <> Nop then
      raise
        (Bank.Timing_violation
           (Printf.sprintf "command bus conflict at %d" cycle));
    (match command with
     | Act (b, row) ->
       check_bank cycle b;
       Bank.activate banks.(b) ~at:cycle ~row;
       bump (fun s -> { s with Stats.activates = s.Stats.activates + 1 })
     | Pre b ->
       check_bank cycle b;
       Bank.precharge banks.(b) ~at:cycle;
       bump (fun s -> { s with Stats.precharges = s.Stats.precharges + 1 })
     | Prea ->
       Array.iter
         (fun bank ->
           match Bank.state bank with
           | Bank.Active _ ->
             Bank.precharge bank ~at:cycle;
             bump (fun s ->
                 { s with Stats.precharges = s.Stats.precharges + 1 })
           | Bank.Idle -> ())
         banks
     | Rd b ->
       check_bank cycle b;
       Bank.column banks.(b) ~at:cycle ~write:false;
       bump (fun s ->
           {
             s with
             Stats.reads = s.Stats.reads + 1;
             requests = s.Stats.requests + 1;
           })
     | Wr b ->
       check_bank cycle b;
       Bank.column banks.(b) ~at:cycle ~write:true;
       bump (fun s ->
           {
             s with
             Stats.writes = s.Stats.writes + 1;
             requests = s.Stats.requests + 1;
           })
     | Ref ->
       Array.iter (fun bank -> Bank.refresh bank ~at:cycle) banks;
       bump (fun s ->
           {
             s with
             Stats.refreshes = s.Stats.refreshes + 1;
             refresh_row_cycles =
               s.Stats.refresh_row_cycles + timing.Timing.trfc;
           })
     | Nop -> ());
    if command <> Nop then last_cycle := cycle
  in
  List.iter
    (fun entry ->
      try apply entry
      with Bank.Timing_violation message ->
        if strict then
          invalid_arg
            (Printf.sprintf "Command_trace.run: %s (cycle %d)" message
               entry.cycle)
        else
          violations := { at = entry.cycle; message } :: !violations)
    entries;
  let end_cycle =
    List.fold_left (fun acc e -> max acc e.cycle) 0 entries + timing.Timing.trc
  in
  stats := { !stats with Stats.cycles = end_cycle };
  {
    stats = !stats;
    energy = Energy_model.of_stats cfg !stats;
    violations = List.rev !violations;
  }

let command_words = function
  | Act (b, r) -> Printf.sprintf "ACT %d %d" b r
  | Pre b -> Printf.sprintf "PRE %d" b
  | Prea -> "PREA"
  | Rd b -> Printf.sprintf "RD %d" b
  | Wr b -> Printf.sprintf "WR %d" b
  | Ref -> "REF"
  | Nop -> "NOP"

let to_string entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# vdram command trace\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%d %s\n" e.cycle (command_words e.command)))
    entries;
  Buffer.contents b

let parse source =
  let lines = String.split_on_char '\n' source in
  let parse_line lineno line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok None
    else
      let words =
        String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
      in
      let int_of w =
        match int_of_string_opt w with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "line %d: bad number %S" lineno w)
      in
      let ( let* ) = Result.bind in
      match words with
      | cycle :: rest ->
        let* cycle = int_of cycle in
        let* command =
          match rest with
          | [ "ACT"; b; r ] ->
            let* b = int_of b in
            let* r = int_of r in
            Ok (Act (b, r))
          | [ "PRE"; b ] ->
            let* b = int_of b in
            Ok (Pre b)
          | [ "PREA" ] -> Ok Prea
          | [ "RD"; b ] ->
            let* b = int_of b in
            Ok (Rd b)
          | [ "WR"; b ] ->
            let* b = int_of b in
            Ok (Wr b)
          | [ "REF" ] -> Ok Ref
          | [ "NOP" ] -> Ok Nop
          | _ -> Error (Printf.sprintf "line %d: bad command" lineno)
        in
        Ok (Some { cycle; command })
      | [] -> Ok None
  in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match parse_line lineno line with
       | Ok (Some e) -> go (e :: acc) (lineno + 1) rest
       | Ok None -> go acc (lineno + 1) rest
       | Error _ as e -> e)
  in
  go [] 1 lines

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> parse source
  | exception Sys_error msg -> Error msg
