(** Per-bank state machine with timing enforcement.

    The controller asks a bank when a command may issue and notifies
    it when one does; the bank tracks its row state and the earliest
    legal cycle of each next command.  Issuing a command before its
    earliest cycle raises [Timing_violation] — the property tests
    drive schedulers through this interface to prove they respect the
    constraints.

    Since the legality extraction this is a thin single-bank view of
    {!Legality}; the exception and state type are the same ones. *)

exception Timing_violation of string

type state = Legality.bank_state =
  | Idle
  | Active of int  (** open row *)

type t

val create : Timing.t -> t

val state : t -> state

val earliest_activate : t -> int
val earliest_column : t -> int
(** Meaningful only while a row is open. *)

val earliest_precharge : t -> int

val activate : t -> at:int -> row:int -> unit
(** Raises [Timing_violation] if the bank is not idle or [at] is
    before {!earliest_activate}. *)

val column : t -> at:int -> write:bool -> unit
(** A read or write to the open row; writes push the earliest
    precharge out by the write recovery time. *)

val precharge : t -> at:int -> unit

val refresh : t -> at:int -> unit
(** All-bank refresh component: requires idle, occupies tRFC. *)
