(* Stats x per-operation energies -> energy report. *)

module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Model = Vdram_core.Model
module Operation = Vdram_core.Operation
module Domains = Vdram_circuits.Domains

type report = {
  config_name : string;
  duration : float;
  energy : float;
  average_power : float;
  energy_per_bit : float;
  breakdown : (string * float) list;
  stats : Stats.t;
}

let powerdown_power (cfg : Config.t) = Model.powerdown_power cfg

let of_stats (cfg : Config.t) (stats : Stats.t) =
  let spec = cfg.Config.spec in
  let tck = 1.0 /. spec.Spec.control_clock in
  let duration = float_of_int stats.Stats.cycles *. tck in
  let e op = Operation.energy cfg op in
  let act_pre =
    float_of_int stats.Stats.activates *. e Operation.Activate
    +. float_of_int stats.Stats.precharges *. e Operation.Precharge
  in
  let read = float_of_int stats.Stats.reads *. e Operation.Read in
  let write = float_of_int stats.Stats.writes *. e Operation.Write in
  (* A refresh command cycles [rows/8192] rows in every bank. *)
  let rows_per_bank =
    spec.Spec.density_bits
    /. float_of_int (spec.Spec.banks * Config.page_bits cfg)
  in
  let rows_per_refresh =
    Float.max 1.0 (rows_per_bank /. 8192.0) *. float_of_int spec.Spec.banks
  in
  let refresh =
    float_of_int stats.Stats.refreshes *. rows_per_refresh
    *. (e Operation.Activate +. e Operation.Precharge)
  in
  let pd_time = float_of_int stats.Stats.powerdown_cycles *. tck in
  let sr_time = float_of_int stats.Stats.selfrefresh_cycles *. tck in
  let awake_time = Float.max 0.0 (duration -. pd_time -. sr_time) in
  let background = Model.background_power cfg *. awake_time in
  let powerdown = powerdown_power cfg *. pd_time in
  let selfrefresh = Model.state_power cfg Model.Self_refresh *. sr_time in
  let energy =
    act_pre +. read +. write +. refresh +. background +. powerdown
    +. selfrefresh
  in
  let bits =
    Stats.bits_transferred stats
      ~bits_per_command:(Spec.bits_per_column_command spec)
  in
  {
    config_name = cfg.Config.name;
    duration;
    energy;
    average_power = (if duration > 0.0 then energy /. duration else 0.0);
    energy_per_bit = (if bits > 0.0 then energy /. bits else 0.0);
    breakdown =
      [
        ("activate/precharge", act_pre);
        ("read", read);
        ("write", write);
        ("refresh", refresh);
        ("background", background);
        ("power-down", powerdown);
        ("self-refresh", selfrefresh);
      ];
    stats;
  }

(* One loop iteration's worth of commands priced through {!of_stats}:
   the "simulated loop energy" the static analyses compare against.
   Raw slot counts, not replay survivors — a measurement loop clocks
   every command into the device whether or not its window is met,
   and this keeps the figure consistent with
   [Model.pattern_power cfg p *. Model.loop_time spec p]. *)
let of_pattern (cfg : Config.t) (p : Vdram_core.Pattern.t) =
  let module Pattern = Vdram_core.Pattern in
  let stats =
    {
      Stats.zero with
      Stats.cycles = Pattern.cycles p;
      activates = Pattern.count p Pattern.Act;
      precharges = Pattern.count p Pattern.Pre;
      reads = Pattern.count p Pattern.Rd;
      writes = Pattern.count p Pattern.Wr;
    }
  in
  of_stats cfg stats

let loop_energy cfg p = (of_pattern cfg p).energy

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%s: %s over %s (avg %s, %.1f pJ/bit)@,  %a@,  %a@]" r.config_name
    (Vdram_units.Si.format_eng ~unit_symbol:"J" r.energy)
    (Vdram_units.Si.format_eng ~unit_symbol:"s" r.duration)
    (Vdram_units.Si.format_eng ~unit_symbol:"W" r.average_power)
    (r.energy_per_bit *. 1e12)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (k, v) ->
         Format.fprintf ppf "%s %s" k
           (Vdram_units.Si.format_eng ~unit_symbol:"J" v)))
    r.breakdown Stats.pp r.stats
