(* Request traces and deterministic workload generators. *)

type request = {
  arrival : int;
  bank : int;
  row : int;
  column : int;
  is_write : bool;
}

type t = request list

let address_of ~banks ~rows ~columns addr =
  let addr = Int64.to_int (Int64.logand addr 0x3FFFFFFFFFFFFFL) in
  let bank = addr mod banks in
  let rest = addr / banks in
  let column = rest mod columns in
  let row = rest / columns mod rows in
  (bank, row, column)

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (max 1 seed) }

(* Numerical Recipes LCG on 64 bits. *)
let next r =
  r.state <-
    Int64.add (Int64.mul r.state 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.shift_right_logical r.state 17)

let next_below r n = if n <= 0 then 0 else next r mod n

let next_float r = float_of_int (next_below r 1_000_000) /. 1_000_000.0

let uniform ~rng ~requests ~arrival_gap ~banks ~rows ~columns
    ~write_fraction =
  List.init requests (fun i ->
      {
        arrival = i * arrival_gap;
        bank = next_below rng banks;
        row = next_below rng rows;
        column = next_below rng columns;
        is_write = next_float rng < write_fraction;
      })

let streaming ~requests ~arrival_gap ~banks ~rows ~columns ~write_fraction =
  List.init requests (fun i ->
      let bank, row, column =
        address_of ~banks ~rows ~columns (Int64.of_int i)
      in
      {
        arrival = i * arrival_gap;
        bank;
        row;
        column;
        (* Deterministic read/write interleave at the requested ratio. *)
        is_write =
          write_fraction > 0.0
          && i mod max 1 (int_of_float (1.0 /. write_fraction)) = 0;
      })

let hotspot ~rng ~requests ~arrival_gap ~banks ~rows ~columns
    ~write_fraction ~hot_rows ~hot_fraction =
  List.init requests (fun i ->
      let hot = next_float rng < hot_fraction in
      let row =
        if hot then next_below rng (max 1 hot_rows)
        else next_below rng rows
      in
      {
        arrival = i * arrival_gap;
        bank = next_below rng banks;
        row;
        column = next_below rng columns;
        is_write = next_float rng < write_fraction;
      })

let idle_gaps ~rng ~trace ~burst ~gap =
  ignore rng;
  let _, reversed =
    List.fold_left
      (fun (i, acc) r ->
        let bursts_before = i / max 1 burst in
        let arrival = r.arrival + (bursts_before * gap) in
        (i + 1, { r with arrival } :: acc))
      (0, []) trace
  in
  List.rev reversed

let idle_gaps ~rng t ~burst ~gap = idle_gaps ~rng ~trace:t ~burst ~gap

let save path t =
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "# vdram trace: arrival R|W bank row column\n";
      List.iter
        (fun r ->
          Printf.fprintf oc "%d %c %d %d %d\n" r.arrival
            (if r.is_write then 'W' else 'R')
            r.bank r.row r.column)
        t)

let load path =
  try
    let lines =
      In_channel.with_open_text path In_channel.input_lines
    in
    let parse lineno line =
      let line = String.trim line in
      if line = "" || line.[0] = '#' then Ok None
      else
        match
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        with
        | [ arrival; rw; bank; row; column ] ->
          (match
             ( int_of_string_opt arrival,
               int_of_string_opt bank,
               int_of_string_opt row,
               int_of_string_opt column,
               String.uppercase_ascii rw )
           with
           | Some arrival, Some bank, Some row, Some column, ("R" | "W") ->
             Ok
               (Some
                  {
                    arrival;
                    bank;
                    row;
                    column;
                    is_write = String.uppercase_ascii rw = "W";
                  })
           | _ ->
             Error (Printf.sprintf "%s:%d: malformed request" path lineno))
        | _ -> Error (Printf.sprintf "%s:%d: expected 5 fields" path lineno)
    in
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        (match parse lineno line with
         | Ok (Some r) -> go (r :: acc) (lineno + 1) rest
         | Ok None -> go acc (lineno + 1) rest
         | Error _ as e -> e)
    in
    go [] 1 lines
  with Sys_error msg -> Error msg

let pp_request ppf r =
  Format.fprintf ppf "@%d %s bank %d row %d col %d" r.arrival
    (if r.is_write then "W" else "R")
    r.bank r.row r.column
