(** Energy integration: simulation counters times the analytical
    model's per-operation energies — the trace-driven use of the
    Figure 4 pipeline. *)

type report = {
  config_name : string;
  duration : float;        (** simulated wall time, s *)
  energy : float;          (** total J *)
  average_power : float;   (** W *)
  energy_per_bit : float;  (** J per transported data bit *)
  breakdown : (string * float) list;
      (** J per component: activate/precharge, read, write, refresh,
          background, power-down *)
  stats : Stats.t;
}

val powerdown_power : Vdram_core.Config.t -> float
(** Power while in precharge power-down: the constant sinks plus a
    residual share of the clocked background (clock stopped, DLL
    holding). *)

val of_stats : Vdram_core.Config.t -> Stats.t -> report

val of_pattern : Vdram_core.Config.t -> Vdram_core.Pattern.t -> report
(** One loop iteration of the pattern priced through {!of_stats}: raw
    slot counts over [Pattern.cycles p] cycles, no power-down or
    refresh.  Consistent with the analytical
    [Model.pattern_power cfg p *. Model.loop_time spec p], so the
    static analyses (`vdram advise`) and the abstract interpreter can
    compare their bounds against it. *)

val loop_energy : Vdram_core.Config.t -> Vdram_core.Pattern.t -> float
(** [(of_pattern cfg p).energy] — joules per loop iteration. *)

val pp : Format.formatter -> report -> unit
