(** DRAM timing constraints in controller clock cycles, derived from a
    device configuration.  The controller clock is the device's
    command clock. *)

type t = {
  tck : float;   (** clock period, s *)
  trcd : int;    (** activate to column command *)
  trp : int;     (** precharge to activate *)
  tras : int;    (** activate to precharge *)
  trc : int;     (** activate to activate, same bank *)
  trrd : int;    (** activate to activate, different bank *)
  tfaw : int;    (** rolling four-activate window *)
  tccd : int;    (** column command to column command (burst occupancy) *)
  tccd_l : int;  (** column to column within a bank group (DDR4/5) *)
  bank_groups : int;
      (** bank groups sharing internal datapaths; 1 before DDR4 *)
  cl : int;      (** read latency *)
  twl : int;     (** write latency *)
  twr : int;     (** write recovery before precharge *)
  trtp : int;    (** read to precharge *)
  trefi : int;   (** average refresh interval *)
  trfc : int;    (** refresh cycle time *)
  txp : int;     (** power-down exit latency *)
}

val of_config : Vdram_core.Config.t -> t
(** Derive the timing set: tRC/tRCD/tRP/tFAW from the specification,
    tCCD from the burst occupancy, CAS latency from tRCD, tRFC from
    the device density (JEDEC-style 110–350 ns), tREFI = 7.8 us. *)

val worst_case : t -> t -> t
(** The hardest-to-satisfy combination of two timing sets: the
    elementwise max of every constraint window (and the min of the
    refresh interval, which binds tighter the shorter it is).  Every
    {!Legality} gate is monotone nondecreasing in its timing fields
    and transitions apply only when legal, so a command stream legal
    under [worst_case a b] is legal under both [a] and [b] — the
    whole-sweep legality check in `vdram check` replays once against
    the fold of this over a generation range. *)

val pp : Format.formatter -> t -> unit
