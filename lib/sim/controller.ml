(* FR-FCFS controller over the shared rank-legality checker. *)

module Config = Vdram_core.Config
module Spec = Vdram_core.Spec

type page_policy = Open_page | Closed_page | Adaptive_page of int

type power_down =
  | No_power_down
  | Precharge_power_down of int
  | Self_refresh_power_down of int * int

let page_policy_name = function
  | Open_page -> "open page"
  | Closed_page -> "closed page"
  | Adaptive_page n -> Printf.sprintf "adaptive page (idle > %d)" n

let power_down_name = function
  | No_power_down -> "no power-down"
  | Precharge_power_down n -> Printf.sprintf "power-down (idle > %d)" n
  | Self_refresh_power_down (pd, sr) ->
    Printf.sprintf "power-down (> %d) + self-refresh (> %d)" pd sr

type state = {
  timing : Timing.t;
  rank : Legality.t;            (* per-bank state + tRRD/tFAW history *)
  page_policy : page_policy;
  power_down : power_down;
  mutable now : int;
  mutable bus_next : int;       (* next free command-bus cycle *)
  mutable data_next : int;      (* next free data-bus cycle *)
  group_last_column : int array;   (* per bank group, for tCCD_L *)
  mutable next_refresh : int;
  mutable stats : Stats.t;
}

let nbanks st = Legality.banks st.rank

let group_of st bank = bank * st.timing.Timing.bank_groups / nbanks st

let issue_cycle st candidates =
  List.fold_left max st.bus_next candidates

(* tFAW / tRRD gating over the rank's recent activate history. *)
let activate_gate st = Legality.activate_gate st.rank

let record_activate st =
  st.stats <- { st.stats with Stats.activates = st.stats.Stats.activates + 1 }

let do_activate st bank at row =
  Legality.enforce (Legality.activate st.rank ~bank ~at ~row);
  record_activate st;
  st.bus_next <- max st.bus_next (at + 1)

let do_precharge st bank at =
  Legality.enforce (Legality.precharge st.rank ~bank ~at);
  st.bus_next <- max st.bus_next (at + 1);
  st.stats <-
    { st.stats with Stats.precharges = st.stats.Stats.precharges + 1 }

let iter_banks st f =
  for bank = 0 to nbanks st - 1 do
    f bank
  done

(* Issue any pending refresh periods that are due before [horizon].
   JEDEC allows at most 8 postponed refreshes, so a long idle gap
   does not produce an unbounded catch-up storm. *)
let maybe_refresh st horizon =
  let max_postponed = 8 in
  if horizon - st.next_refresh > max_postponed * st.timing.Timing.trefi
  then
    st.next_refresh <-
      horizon - (max_postponed * st.timing.Timing.trefi);
  while st.next_refresh <= horizon do
    let at = max st.next_refresh st.bus_next in
    (* Precharge all open banks first. *)
    iter_banks st (fun bank ->
        match Legality.state st.rank bank with
        | Legality.Active _ ->
          let t = max at (Legality.earliest_precharge st.rank bank) in
          do_precharge st bank t
        | Legality.Idle -> ());
    let start = ref at in
    iter_banks st (fun bank ->
        start := max !start (Legality.earliest_activate st.rank bank));
    iter_banks st (fun bank ->
        Legality.enforce (Legality.refresh st.rank ~bank ~at:!start));
    st.bus_next <- max st.bus_next (!start + 1);
    st.stats <-
      {
        st.stats with
        Stats.refreshes = st.stats.Stats.refreshes + 1;
        refresh_row_cycles =
          st.stats.Stats.refresh_row_cycles + st.timing.Timing.trfc;
      };
    st.next_refresh <- st.next_refresh + st.timing.Timing.trefi
  done

let serve st (r : Trace.request) =
  let bank = r.Trace.bank in
  let hit =
    match Legality.state st.rank bank with
    | Legality.Active row when row = r.Trace.row -> true
    | _ -> false
  in
  (* Close a conflicting row. *)
  (match Legality.state st.rank bank with
   | Legality.Active row when row <> r.Trace.row ->
     let at =
       issue_cycle st
         [ Legality.earliest_precharge st.rank bank; r.Trace.arrival ]
     in
     do_precharge st bank at
   | _ -> ());
  (* Open the row if needed. *)
  (match Legality.state st.rank bank with
   | Legality.Idle ->
     let at =
       issue_cycle st
         [ Legality.earliest_activate st.rank bank; r.Trace.arrival;
           activate_gate st ]
     in
     do_activate st bank at r.Trace.row
   | Legality.Active _ -> ());
  (* Column command; same-group commands respect the long tCCD. *)
  let group = group_of st bank in
  let group_gate =
    st.group_last_column.(group) + st.timing.Timing.tccd_l
  in
  let at =
    issue_cycle st
      [ Legality.earliest_column st.rank bank; st.data_next;
        r.Trace.arrival; group_gate ]
  in
  Legality.enforce
    (Legality.column st.rank ~bank ~at ~write:r.Trace.is_write);
  st.group_last_column.(group) <- at;
  st.bus_next <- max st.bus_next (at + 1);
  st.data_next <- at + st.timing.Timing.tccd;
  let latency_base =
    if r.Trace.is_write then st.timing.Timing.twl else st.timing.Timing.cl
  in
  let completion = at + latency_base + st.timing.Timing.tccd in
  st.stats <-
    {
      st.stats with
      Stats.reads = (st.stats.Stats.reads + if r.Trace.is_write then 0 else 1);
      writes = (st.stats.Stats.writes + if r.Trace.is_write then 1 else 0);
      row_hits = (st.stats.Stats.row_hits + if hit then 1 else 0);
      row_misses = (st.stats.Stats.row_misses + if hit then 0 else 1);
      requests = st.stats.Stats.requests + 1;
      latency_sum =
        st.stats.Stats.latency_sum + (completion - r.Trace.arrival);
      latency_max =
        max st.stats.Stats.latency_max (completion - r.Trace.arrival);
    };
  (* Closed-page policy precharges immediately. *)
  (match st.page_policy with
   | Closed_page ->
     let at =
       issue_cycle st [ Legality.earliest_precharge st.rank bank ]
     in
     do_precharge st bank at
   | Open_page | Adaptive_page _ -> ());
  st.now <- max st.now at

(* Adaptive policy: close rows that have sat idle past the threshold.
   Run when time advances to a new request. *)
let close_stale_rows st horizon =
  match st.page_policy with
  | Adaptive_page threshold ->
    iter_banks st (fun bank ->
        match Legality.state st.rank bank with
        | Legality.Active _ ->
          (* A row untouched since its last column command has its
             earliest-precharge time in the past; close it once the
             idle threshold has elapsed beyond that point. *)
          let stale_at =
            Legality.earliest_precharge st.rank bank + threshold
          in
          if stale_at <= horizon then begin
            let at = max stale_at st.bus_next in
            if at <= horizon then do_precharge st bank at
          end
        | Legality.Idle -> ())
  | Open_page | Closed_page -> ()

(* Power-down bookkeeping between the current time and the next
   arrival. *)
let close_all_banks st =
  iter_banks st (fun bank ->
      match Legality.state st.rank bank with
      | Legality.Active _ ->
        let t = max st.now (Legality.earliest_precharge st.rank bank) in
        do_precharge st bank t
      | Legality.Idle -> ())

let enter_sleep st ~next_arrival ~exit_latency ~self_refresh =
  close_all_banks st;
  let sleep = next_arrival - st.now - exit_latency in
  if self_refresh then begin
    st.stats <-
      {
        st.stats with
        Stats.selfrefresh_cycles = st.stats.Stats.selfrefresh_cycles + sleep;
      };
    (* Refresh is internal while asleep; resume the external refresh
       schedule at wake-up. *)
    let wake = next_arrival in
    while st.next_refresh <= wake do
      st.next_refresh <- st.next_refresh + st.timing.Timing.trefi
    done
  end
  else begin
    (* Plain power-down still needs external refresh: the controller
       wakes every tREFI, refreshes, and drops back to sleep.  The
       wake overhead is booked as ordinary awake time. *)
    let refreshes = sleep / st.timing.Timing.trefi in
    let wake_overhead =
      refreshes * (st.timing.Timing.trfc + st.timing.Timing.txp)
    in
    let asleep = max 0 (sleep - wake_overhead) in
    st.stats <-
      {
        st.stats with
        Stats.powerdown_cycles = st.stats.Stats.powerdown_cycles + asleep;
        refreshes = st.stats.Stats.refreshes + refreshes;
        refresh_row_cycles =
          st.stats.Stats.refresh_row_cycles
          + (refreshes * st.timing.Timing.trfc);
      };
    let wake = next_arrival in
    while st.next_refresh <= wake do
      st.next_refresh <- st.next_refresh + st.timing.Timing.trefi
    done
  end;
  st.now <- next_arrival

let maybe_power_down st next_arrival =
  let idle = next_arrival - st.now in
  match st.power_down with
  | No_power_down -> ()
  | Precharge_power_down threshold ->
    if idle > threshold + st.timing.Timing.txp then
      enter_sleep st ~next_arrival ~exit_latency:st.timing.Timing.txp
        ~self_refresh:false
  | Self_refresh_power_down (pd, sr) ->
    let txsr = st.timing.Timing.trfc + st.timing.Timing.txp in
    if idle > sr + txsr then
      enter_sleep st ~next_arrival ~exit_latency:txsr ~self_refresh:true
    else if idle > pd + st.timing.Timing.txp then
      enter_sleep st ~next_arrival ~exit_latency:st.timing.Timing.txp
        ~self_refresh:false

let run ?(page_policy = Open_page) ?(power_down = No_power_down)
    ?(window = 16) (cfg : Config.t) trace =
  let timing = Timing.of_config cfg in
  let rank = Legality.create timing ~banks:cfg.Config.spec.Spec.banks in
  let st =
    {
      timing;
      rank;
      page_policy;
      power_down;
      now = 0;
      bus_next = 0;
      data_next = 0;
      group_last_column =
        Array.make (max 1 timing.Timing.bank_groups)
          (- timing.Timing.tccd - timing.Timing.tccd);
      next_refresh = timing.Timing.trefi;
      stats = Stats.zero;
    }
  in
  (* FR-FCFS over a sliding window: prefer the first row hit among the
     oldest [window] pending requests. *)
  let pending = ref trace in
  let rec pick_hit taken = function
    | [] -> None
    | r :: rest when List.length taken >= window -> ignore (r :: rest); None
    | r :: rest ->
      if r.Trace.arrival > st.now then None
      else
        (match Legality.state st.rank r.Trace.bank with
         | Legality.Active row when row = r.Trace.row ->
           Some (r, List.rev_append taken rest)
         | _ -> pick_hit (r :: taken) rest)
  in
  while !pending <> [] do
    maybe_refresh st st.now;
    close_stale_rows st st.now;
    let next =
      match pick_hit [] !pending with
      | Some (r, rest) ->
        pending := rest;
        r
      | None ->
        (match !pending with
         | r :: rest ->
           (* Idle time until the next arrival: stale rows close and
              power-down may engage before it. *)
           close_stale_rows st (max st.now r.Trace.arrival);
           maybe_power_down st r.Trace.arrival;
           if r.Trace.arrival > st.now then st.now <- r.Trace.arrival;
           pending := rest;
           r
         | [] -> assert false)
    in
    serve st next
  done;
  let final = max st.now (max st.bus_next st.data_next) in
  { st.stats with Stats.cycles = final }
