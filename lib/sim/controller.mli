(** Memory controller: FR-FCFS scheduling over the bank state
    machines, page policy, refresh and power-down management
    (the system-side knobs of Hur et al., Section V). *)

type page_policy =
  | Open_page    (** leave rows open, bet on row hits *)
  | Closed_page  (** precharge right after every access *)
  | Adaptive_page of int
      (** leave the row open, but precharge it once it has been idle
          this many cycles — the middle ground real controllers use *)

type power_down =
  | No_power_down
  | Precharge_power_down of int
      (** enter precharge power-down when the queue is empty and the
          next arrival is more than this many cycles away *)
  | Self_refresh_power_down of int * int
      (** [(pd_threshold, sr_threshold)]: precharge power-down beyond
          the first threshold, full self-refresh beyond the second
          (clock stopped, refresh handled internally) *)

val page_policy_name : page_policy -> string
val power_down_name : power_down -> string

val run :
  ?page_policy:page_policy ->
  ?power_down:power_down ->
  ?window:int ->
  Vdram_core.Config.t ->
  Trace.t ->
  Stats.t
(** Simulate a request trace to completion.  [window] is the FR-FCFS
    reorder depth (default 16).  Requests must be sorted by arrival.
    Defaults: open page, no power-down. *)
