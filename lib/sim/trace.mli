(** Memory request traces and synthetic workload generators.

    Generators use a deterministic linear-congruential engine so runs
    are reproducible without any global random state. *)

type request = {
  arrival : int;      (** controller cycle of arrival *)
  bank : int;
  row : int;
  column : int;       (** column-command granularity index *)
  is_write : bool;
}

type t = request list

val address_of :
  banks:int -> rows:int -> columns:int -> int64 -> int * int * int
(** Map a linear address to (bank, row, column) with bank bits in the
    low column bits (bank interleaving). *)

type rng

val rng : int -> rng
(** Seeded generator. *)

val uniform :
  rng:rng -> requests:int -> arrival_gap:int -> banks:int -> rows:int ->
  columns:int -> write_fraction:float -> t
(** Uniformly random addresses — the row-miss-heavy worst case. *)

val streaming :
  requests:int -> arrival_gap:int -> banks:int -> rows:int ->
  columns:int -> write_fraction:float -> t
(** Sequential addresses — the row-hit-friendly best case. *)

val hotspot :
  rng:rng -> requests:int -> arrival_gap:int -> banks:int -> rows:int ->
  columns:int -> write_fraction:float -> hot_rows:int -> hot_fraction:float ->
  t
(** A fraction of accesses hit a small set of rows (server-cache
    style locality). *)

val idle_gaps :
  rng:rng -> t -> burst:int -> gap:int -> t
(** Re-time a trace into bursts of [burst] requests separated by idle
    gaps of [gap] cycles — the pattern that makes power-down policies
    interesting. *)

val save : string -> t -> unit
(** Write a trace as text, one request per line:
    [<arrival> <R|W> <bank> <row> <column>].  Lines starting with [#]
    are comments. *)

val load : string -> (t, string) result
(** Parse a trace file in the {!save} format; the error names the
    offending line. *)

val pp_request : Format.formatter -> request -> unit
