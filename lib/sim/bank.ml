(* Bank FSM with timing bookkeeping. *)

exception Timing_violation of string

type state =
  | Idle
  | Active of int

type t = {
  timing : Timing.t;
  mutable bank_state : state;
  mutable next_activate : int;
  mutable next_column : int;
  mutable next_precharge : int;
}

let create timing =
  {
    timing;
    bank_state = Idle;
    next_activate = 0;
    next_column = 0;
    next_precharge = 0;
  }

let state t = t.bank_state

let earliest_activate t = t.next_activate

let earliest_column t = t.next_column

let earliest_precharge t = t.next_precharge

let fail fmt = Printf.ksprintf (fun m -> raise (Timing_violation m)) fmt

let activate t ~at ~row =
  (match t.bank_state with
   | Idle -> ()
   | Active _ -> fail "activate at %d: bank not idle" at);
  if at < t.next_activate then
    fail "activate at %d before tRC/tRP allows (%d)" at t.next_activate;
  t.bank_state <- Active row;
  t.next_column <- at + t.timing.Timing.trcd;
  t.next_precharge <- at + t.timing.Timing.tras;
  t.next_activate <- at + t.timing.Timing.trc

let column t ~at ~write =
  (match t.bank_state with
   | Active _ -> ()
   | Idle -> fail "column command at %d: no open row" at);
  if at < t.next_column then
    fail "column at %d before tRCD/tCCD allows (%d)" at t.next_column;
  t.next_column <- at + t.timing.Timing.tccd;
  let release =
    if write then
      at + t.timing.Timing.twl + t.timing.Timing.tccd + t.timing.Timing.twr
    else at + t.timing.Timing.trtp
  in
  t.next_precharge <- max t.next_precharge release

let precharge t ~at =
  (match t.bank_state with
   | Active _ -> ()
   | Idle -> fail "precharge at %d: bank already idle" at);
  if at < t.next_precharge then
    fail "precharge at %d before tRAS/tWR allows (%d)" at t.next_precharge;
  t.bank_state <- Idle;
  t.next_activate <- max t.next_activate (at + t.timing.Timing.trp)

let refresh t ~at =
  (match t.bank_state with
   | Idle -> ()
   | Active _ -> fail "refresh at %d: bank not precharged" at);
  if at < t.next_activate then
    fail "refresh at %d before tRP allows (%d)" at t.next_activate;
  t.next_activate <- at + t.timing.Timing.trfc
