(* Bank FSM with timing bookkeeping — the single-bank view of the
   standalone Legality checker, so the simulator and the lint pattern
   pass share one definition of command legality. *)

exception Timing_violation = Legality.Timing_violation

type state = Legality.bank_state =
  | Idle
  | Active of int

type t = Legality.t

let create timing = Legality.create timing ~banks:1

let state t = Legality.state t 0

let earliest_activate t = Legality.earliest_activate t 0

let earliest_column t = Legality.earliest_column t 0

let earliest_precharge t = Legality.earliest_precharge t 0

let activate t ~at ~row =
  Legality.enforce (Legality.activate t ~bank:0 ~at ~row)

let column t ~at ~write =
  Legality.enforce (Legality.column t ~bank:0 ~at ~write)

let precharge t ~at = Legality.enforce (Legality.precharge t ~bank:0 ~at)

let refresh t ~at = Legality.enforce (Legality.refresh t ~bank:0 ~at)
