(* Timing constraints derived from a configuration. *)

module Config = Vdram_core.Config
module Spec = Vdram_core.Spec

type t = {
  tck : float;
  trcd : int;
  trp : int;
  tras : int;
  trc : int;
  trrd : int;
  tfaw : int;
  tccd : int;
  tccd_l : int;
  bank_groups : int;
  cl : int;
  twl : int;
  twr : int;
  trtp : int;
  trefi : int;
  trfc : int;
  txp : int;
}

let cycles_of ~tck seconds = max 1 (int_of_float (Float.ceil (seconds /. tck)))

let of_config (cfg : Config.t) =
  let spec = cfg.Config.spec in
  let tck = 1.0 /. spec.Spec.control_clock in
  let c = cycles_of ~tck in
  let trcd = c spec.Spec.trcd in
  let trp = c spec.Spec.trp in
  let trc = c spec.Spec.trc in
  let tras = max 1 (trc - trp) in
  let tfaw = c spec.Spec.tfaw in
  let tccd = Spec.clocks_per_column_command spec in
  (* Bank groups arrive with DDR4: long tCCD within a group. *)
  let bank_groups =
    match Vdram_tech.Node.standard cfg.Config.node with
    | Vdram_tech.Node.Ddr4 | Vdram_tech.Node.Ddr5 ->
      max 1 (spec.Spec.banks / 4)
    | _ -> 1
  in
  let tccd_l =
    if bank_groups > 1 then tccd + max 1 (tccd / 2) else tccd
  in
  (* Refresh cycle time grows with density, JEDEC-style. *)
  let gbit = spec.Spec.density_bits /. (2.0 ** 30.0) in
  let trfc_s =
    if gbit <= 1.0 then 110e-9
    else if gbit <= 2.0 then 160e-9
    else if gbit <= 4.0 then 260e-9
    else 350e-9
  in
  {
    tck;
    trcd;
    trp;
    tras;
    trc;
    trrd = max 2 (tfaw / 4);
    tfaw;
    tccd;
    tccd_l;
    bank_groups;
    cl = trcd;
    twl = max 1 (trcd - 1);
    twr = c 15e-9;
    trtp = max 2 (tccd / 2);
    trefi = c 7.8e-6;
    trfc = c trfc_s;
    txp = c 24e-9;
  }

(* The elementwise-max timing set of two generations.  Every legality
   gate is [issue cycle + field] (or a max of such), monotone
   nondecreasing in each field, and transitions apply only when legal
   — so a command stream legal under the worst case is legal under
   every pointwise-smaller timing set.  `vdram check` leans on this to
   clear a whole sweep with one replay. *)
let worst_case a b =
  {
    tck = Float.max a.tck b.tck;
    trcd = max a.trcd b.trcd;
    trp = max a.trp b.trp;
    tras = max a.tras b.tras;
    trc = max a.trc b.trc;
    trrd = max a.trrd b.trrd;
    tfaw = max a.tfaw b.tfaw;
    tccd = max a.tccd b.tccd;
    tccd_l = max a.tccd_l b.tccd_l;
    bank_groups = max a.bank_groups b.bank_groups;
    cl = max a.cl b.cl;
    twl = max a.twl b.twl;
    twr = max a.twr b.twr;
    trtp = max a.trtp b.trtp;
    trefi = min a.trefi b.trefi;
    trfc = max a.trfc b.trfc;
    txp = max a.txp b.txp;
  }

let pp ppf t =
  Format.fprintf ppf
    "tCK %.2f ns, tRCD %d, tRP %d, tRAS %d, tRC %d, tRRD %d, tFAW %d, \
     tCCD %d/%d (%d groups), CL %d, tWR %d, tREFI %d, tRFC %d"
    (t.tck *. 1e9) t.trcd t.trp t.tras t.trc t.trrd t.tfaw t.tccd t.tccd_l
    t.bank_groups t.cl t.twr t.trefi t.trfc
