(** Standalone per-bank / rank command-legality checker.

    Tracks the row state and timing windows of every bank in a rank
    (per-bank tRC / tRCD / tRAS / tRP / tWR, rank-level tRRD and the
    four-activate tFAW window) and judges each command against them.
    Commands return the list of constraints they violate — the empty
    list means the command was legal and the state transition was
    applied; a violating command leaves the state untouched.

    The simulator consumes this component ({!Bank} is its single-bank
    view, {!Controller} drives a whole rank through it) and the lint
    V08xx pattern pass replays command patterns through it, so the
    simulator and `vdram lint` share one definition of legality. *)

exception Timing_violation of string

type bank_state =
  | Idle
  | Active of int  (** open row *)

type command = Activate | Read | Write | Precharge | Refresh

type kind =
  | Bank_busy      (** the bank's row state forbids the command *)
  | Act_to_act     (** same-bank activate inside the tRC/tRP window *)
  | Act_spacing    (** rank-level tRRD between activates *)
  | Four_activate  (** more than four activates per tFAW window *)
  | Col_timing     (** column command before tRCD/tCCD allow *)
  | Pre_timing     (** precharge before tRAS/tWR allow *)
  | Ref_timing     (** refresh before tRP/tRC allow *)

type violation = {
  command : command;
  kind : kind;
  bank : int;
  at : int;        (** issue cycle of the offending command *)
  earliest : int;  (** first cycle at which it would have been legal *)
}

type t

val create : Timing.t -> banks:int -> t
(** A rank of [banks] idle banks.  Raises [Invalid_argument] when
    [banks < 1]. *)

val banks : t -> int
val timing : t -> Timing.t
val state : t -> int -> bank_state

val earliest_activate : t -> int -> int
val earliest_column : t -> int -> int
(** Meaningful only while the bank's row is open. *)

val earliest_precharge : t -> int -> int

val activate_gate : t -> int
(** The rank-level earliest activate cycle implied by tRRD and tFAW
    over the recent activate history (0 when unconstrained). *)

val activate : t -> bank:int -> at:int -> row:int -> violation list
val column : t -> bank:int -> at:int -> write:bool -> violation list
val precharge : t -> bank:int -> at:int -> violation list
val refresh : t -> bank:int -> at:int -> violation list
(** All-bank refresh component for one bank: requires the bank idle,
    occupies tRFC. *)

val command_name : command -> string
val message : violation -> string
(** The human rendering of a violation (the strings the simulator's
    [Timing_violation] exceptions have always carried). *)

val enforce : violation list -> unit
(** [()] on the empty list; raises [Timing_violation] with the
    {!message} of the first violation otherwise — the bridge from the
    collecting interface to the simulator's exception discipline. *)

type issue = {
  slot : int;           (** pattern slot index, [0 <= slot < cycles] *)
  iteration : int;      (** loop iteration of the replay *)
  command : command;
  bank : int;           (** target bank; [-1] for a precharge issued
                            with no bank open (skipped) *)
  at : int;             (** issue cycle *)
  earliest : int;       (** latest timing gate: the first cycle the
                            binding constraint allows; [0] when no
                            window constrains the command *)
  binding : kind option;
      (** the constraint behind [earliest]; [None] when the command
          was unconstrained.  [at - earliest] is the command's slack
          (negative for an under-spaced window). *)
  violations : violation list;
      (** what the command violated; [[]] means it was applied *)
}

val replay_trace :
  Timing.t -> banks:int -> Vdram_core.Pattern.t -> issue list * int
(** Replay a command loop against a fresh rank the way a datasheet
    current-measurement loop runs it: activates rotate round-robin
    across the banks, column commands target the most recently
    activated bank, precharges close the oldest open bank, for enough
    loop iterations to wrap the bank rotation at least once.  Returns
    one {!issue} per non-nop command in issue order — each carrying
    the binding timing gate observed {e before} the command was
    applied — and the number of cycles replayed ([([], 0)] for empty
    loops or no banks).  The `vdram advise` slack and utilization
    analyses read this trace. *)

val replay_pattern :
  Timing.t -> banks:int -> Vdram_core.Pattern.t -> violation list * int
(** The activate-band projection of {!replay_trace}: the tRC / tRRD /
    tFAW violations in issue order and the number of cycles replayed
    ([([], 0)] for loops with no activates, no cycles, or no banks).
    Column/precharge under-spacing is deliberately not surfaced —
    datasheet measurement loops set a power mix, not a schedulable
    trace.  The lint V08xx pattern pass and the `vdram check`
    whole-sweep analysis share this replay. *)

type usage = {
  command_bus : float;
      (** non-nop slots per loop cycle, [0, 1] *)
  data_bus : float;
      (** data-bus occupancy: column commands times their tCCD burst
          slots per loop cycle, capped at 1 *)
  bank_open : float;
      (** mean fraction of the rank's banks holding an open row over
          the steady replay window (first iteration dropped) *)
}

val pattern_usage : Timing.t -> banks:int -> Vdram_core.Pattern.t -> usage
(** Steady-state bus and bank utilization of a loop, derived from
    {!replay_trace} (all-zero for empty loops or no banks). *)
