(* Standalone per-bank / rank command-legality checker.

   This is the single definition of DRAM command legality: the
   simulator's bank FSM ({!Bank}) is a one-bank view of it and the
   FR-FCFS controller drives a whole rank through it, while the lint
   pattern pass replays command patterns through the same code — so
   the simulator and `vdram lint` can never disagree about what a
   legal command stream is. *)

exception Timing_violation of string

type bank_state =
  | Idle
  | Active of int

type command = Activate | Read | Write | Precharge | Refresh

type kind =
  | Bank_busy      (* the bank's row state forbids the command *)
  | Act_to_act     (* same-bank activate inside the tRC/tRP window *)
  | Act_spacing    (* rank-level tRRD between activates *)
  | Four_activate  (* more than four activates per tFAW window *)
  | Col_timing     (* column command before tRCD/tCCD allow *)
  | Pre_timing     (* precharge before tRAS/tWR allow *)
  | Ref_timing     (* refresh before tRP/tRC allow *)

type violation = {
  command : command;
  kind : kind;
  bank : int;
  at : int;
  earliest : int;
}

type t = {
  timing : Timing.t;
  states : bank_state array;
  next_activate : int array;
  next_column : int array;
  next_precharge : int array;
  mutable act_history : int list;  (* recent activates, newest first *)
}

let create timing ~banks =
  if banks < 1 then invalid_arg "Legality.create: banks must be positive";
  {
    timing;
    states = Array.make banks Idle;
    next_activate = Array.make banks 0;
    next_column = Array.make banks 0;
    next_precharge = Array.make banks 0;
    act_history = [];
  }

let banks t = Array.length t.states
let timing t = t.timing
let state t bank = t.states.(bank)
let earliest_activate t bank = t.next_activate.(bank)
let earliest_column t bank = t.next_column.(bank)
let earliest_precharge t bank = t.next_precharge.(bank)

(* Rank-level tRRD / tFAW gate over the recent activate history. *)
let activate_gate t =
  let trrd_gate =
    match t.act_history with
    | [] -> 0
    | last :: _ -> last + t.timing.Timing.trrd
  in
  let tfaw_gate =
    match List.nth_opt t.act_history 3 with
    | Some fourth -> fourth + t.timing.Timing.tfaw
    | None -> 0
  in
  max trrd_gate tfaw_gate

let command_name = function
  | Activate -> "activate"
  | Read -> "read"
  | Write -> "write"
  | Precharge -> "precharge"
  | Refresh -> "refresh"

let message v =
  match (v.command, v.kind) with
  | Activate, Bank_busy -> Printf.sprintf "activate at %d: bank not idle" v.at
  | Activate, Act_to_act ->
    Printf.sprintf "activate at %d before tRC/tRP allows (%d)" v.at v.earliest
  | Activate, Act_spacing ->
    Printf.sprintf "activate at %d before tRRD allows (%d)" v.at v.earliest
  | Activate, Four_activate ->
    Printf.sprintf "activate at %d violates the four-activate window (tFAW, %d)"
      v.at v.earliest
  | Activate, _ ->
    Printf.sprintf "activate at %d before %d allows" v.at v.earliest
  | (Read | Write), Bank_busy ->
    Printf.sprintf "column command at %d: no open row" v.at
  | (Read | Write), _ ->
    Printf.sprintf "column at %d before tRCD/tCCD allows (%d)" v.at v.earliest
  | Precharge, Bank_busy ->
    Printf.sprintf "precharge at %d: bank already idle" v.at
  | Precharge, _ ->
    Printf.sprintf "precharge at %d before tRAS/tWR allows (%d)" v.at
      v.earliest
  | Refresh, Bank_busy ->
    Printf.sprintf "refresh at %d: bank not precharged" v.at
  | Refresh, _ ->
    Printf.sprintf "refresh at %d before tRP allows (%d)" v.at v.earliest

let enforce = function
  | [] -> ()
  | v :: _ -> raise (Timing_violation (message v))

(* Commands check legality first and apply their state transition only
   when legal, so an illegal command never corrupts the tracked state
   (the bank FSM relied on exactly that before the extraction). *)

let activate t ~bank ~at ~row =
  let viol = ref [] in
  let push kind earliest =
    viol := { command = Activate; kind; bank; at; earliest } :: !viol
  in
  (match t.states.(bank) with Active _ -> push Bank_busy at | Idle -> ());
  if at < t.next_activate.(bank) then push Act_to_act t.next_activate.(bank);
  (* tRRD / tFAW order activates across *different* banks of a rank; a
     single-bank checker is a plain bank FSM, where same-bank spacing
     is already governed by the (longer) tRC window. *)
  if Array.length t.states > 1 then begin
    (match t.act_history with
     | last :: _ when at < last + t.timing.Timing.trrd ->
       push Act_spacing (last + t.timing.Timing.trrd)
     | _ -> ());
    match List.nth_opt t.act_history 3 with
    | Some fourth when at < fourth + t.timing.Timing.tfaw ->
      push Four_activate (fourth + t.timing.Timing.tfaw)
    | _ -> ()
  end;
  let violations = List.rev !viol in
  if violations = [] then begin
    t.states.(bank) <- Active row;
    t.next_column.(bank) <- at + t.timing.Timing.trcd;
    t.next_precharge.(bank) <- at + t.timing.Timing.tras;
    t.next_activate.(bank) <- at + t.timing.Timing.trc;
    t.act_history <- at :: t.act_history;
    match t.act_history with
    | a :: b :: c :: d :: _ -> t.act_history <- [ a; b; c; d ]
    | _ -> ()
  end;
  violations

let column t ~bank ~at ~write =
  let command = if write then Write else Read in
  match t.states.(bank) with
  | Idle -> [ { command; kind = Bank_busy; bank; at; earliest = at } ]
  | Active _ ->
    if at < t.next_column.(bank) then
      [ { command; kind = Col_timing; bank; at;
          earliest = t.next_column.(bank) } ]
    else begin
      t.next_column.(bank) <- at + t.timing.Timing.tccd;
      let release =
        if write then
          at + t.timing.Timing.twl + t.timing.Timing.tccd
          + t.timing.Timing.twr
        else at + t.timing.Timing.trtp
      in
      t.next_precharge.(bank) <- max t.next_precharge.(bank) release;
      []
    end

let precharge t ~bank ~at =
  match t.states.(bank) with
  | Idle -> [ { command = Precharge; kind = Bank_busy; bank; at; earliest = at } ]
  | Active _ ->
    if at < t.next_precharge.(bank) then
      [ { command = Precharge; kind = Pre_timing; bank; at;
          earliest = t.next_precharge.(bank) } ]
    else begin
      t.states.(bank) <- Idle;
      t.next_activate.(bank) <-
        max t.next_activate.(bank) (at + t.timing.Timing.trp);
      []
    end

let refresh t ~bank ~at =
  match t.states.(bank) with
  | Active _ -> [ { command = Refresh; kind = Bank_busy; bank; at; earliest = at } ]
  | Idle ->
    if at < t.next_activate.(bank) then
      [ { command = Refresh; kind = Ref_timing; bank; at;
          earliest = t.next_activate.(bank) } ]
    else begin
      t.next_activate.(bank) <- at + t.timing.Timing.trfc;
      []
    end

(* ----- pattern replay ---------------------------------------------- *)

(* Replay a command loop the way a datasheet current-measurement loop
   runs it: activates rotate round-robin across the banks, column
   commands go to the most recently activated bank, precharges close
   the oldest open bank; enough loop iterations to wrap the bank
   rotation at least once.  Extracted from the lint pattern pass so
   `vdram lint`, `vdram check` and the simulator share one replay
   discipline and can never disagree about a pattern's legality. *)
let replay_pattern timing ~banks (p : Vdram_core.Pattern.t) =
  let module Pattern = Vdram_core.Pattern in
  let slots =
    List.concat_map
      (fun (c, n) -> List.init n (fun _ -> c))
      p.Pattern.slots
  in
  let cycles = List.length slots in
  let acts = Pattern.count p Pattern.Act in
  if cycles = 0 || acts = 0 || banks < 1 then ([], 0)
  else begin
    let iters = min 64 (((banks + acts - 1) / acts) + 2) in
    let rank = create timing ~banks in
    let next_bank = ref 0 in
    let last_bank = ref 0 in
    let open_order = ref [] in
    let viols = ref [] in
    for iter = 0 to iters - 1 do
      List.iteri
        (fun idx cmd ->
          let at = (iter * cycles) + idx in
          match cmd with
          | Pattern.Nop -> ()
          | Pattern.Act ->
            let bank = !next_bank in
            next_bank := (bank + 1) mod banks;
            (match activate rank ~bank ~at ~row:0 with
             | [] ->
               last_bank := bank;
               open_order := !open_order @ [ bank ]
             | vs -> viols := List.rev_append vs !viols)
          | Pattern.Rd ->
            ignore (column rank ~bank:!last_bank ~at ~write:false)
          | Pattern.Wr ->
            ignore (column rank ~bank:!last_bank ~at ~write:true)
          | Pattern.Pre ->
            (match !open_order with
             | [] -> ()
             | bank :: rest ->
               (match precharge rank ~bank ~at with
                | [] -> open_order := rest
                | _ -> ())))
        slots
    done;
    (List.rev !viols, iters * cycles)
  end
