(* Standalone per-bank / rank command-legality checker.

   This is the single definition of DRAM command legality: the
   simulator's bank FSM ({!Bank}) is a one-bank view of it and the
   FR-FCFS controller drives a whole rank through it, while the lint
   pattern pass replays command patterns through the same code — so
   the simulator and `vdram lint` can never disagree about what a
   legal command stream is. *)

exception Timing_violation of string

type bank_state =
  | Idle
  | Active of int

type command = Activate | Read | Write | Precharge | Refresh

type kind =
  | Bank_busy      (* the bank's row state forbids the command *)
  | Act_to_act     (* same-bank activate inside the tRC/tRP window *)
  | Act_spacing    (* rank-level tRRD between activates *)
  | Four_activate  (* more than four activates per tFAW window *)
  | Col_timing     (* column command before tRCD/tCCD allow *)
  | Pre_timing     (* precharge before tRAS/tWR allow *)
  | Ref_timing     (* refresh before tRP/tRC allow *)

type violation = {
  command : command;
  kind : kind;
  bank : int;
  at : int;
  earliest : int;
}

type t = {
  timing : Timing.t;
  states : bank_state array;
  next_activate : int array;
  next_column : int array;
  next_precharge : int array;
  mutable act_history : int list;  (* recent activates, newest first *)
}

let create timing ~banks =
  if banks < 1 then invalid_arg "Legality.create: banks must be positive";
  {
    timing;
    states = Array.make banks Idle;
    next_activate = Array.make banks 0;
    next_column = Array.make banks 0;
    next_precharge = Array.make banks 0;
    act_history = [];
  }

let banks t = Array.length t.states
let timing t = t.timing
let state t bank = t.states.(bank)
let earliest_activate t bank = t.next_activate.(bank)
let earliest_column t bank = t.next_column.(bank)
let earliest_precharge t bank = t.next_precharge.(bank)

(* Rank-level tRRD / tFAW gate over the recent activate history. *)
let activate_gate t =
  let trrd_gate =
    match t.act_history with
    | [] -> 0
    | last :: _ -> last + t.timing.Timing.trrd
  in
  let tfaw_gate =
    match List.nth_opt t.act_history 3 with
    | Some fourth -> fourth + t.timing.Timing.tfaw
    | None -> 0
  in
  max trrd_gate tfaw_gate

let command_name = function
  | Activate -> "activate"
  | Read -> "read"
  | Write -> "write"
  | Precharge -> "precharge"
  | Refresh -> "refresh"

let message v =
  match (v.command, v.kind) with
  | Activate, Bank_busy -> Printf.sprintf "activate at %d: bank not idle" v.at
  | Activate, Act_to_act ->
    Printf.sprintf "activate at %d before tRC/tRP allows (%d)" v.at v.earliest
  | Activate, Act_spacing ->
    Printf.sprintf "activate at %d before tRRD allows (%d)" v.at v.earliest
  | Activate, Four_activate ->
    Printf.sprintf "activate at %d violates the four-activate window (tFAW, %d)"
      v.at v.earliest
  | Activate, _ ->
    Printf.sprintf "activate at %d before %d allows" v.at v.earliest
  | (Read | Write), Bank_busy ->
    Printf.sprintf "column command at %d: no open row" v.at
  | (Read | Write), _ ->
    Printf.sprintf "column at %d before tRCD/tCCD allows (%d)" v.at v.earliest
  | Precharge, Bank_busy ->
    Printf.sprintf "precharge at %d: bank already idle" v.at
  | Precharge, _ ->
    Printf.sprintf "precharge at %d before tRAS/tWR allows (%d)" v.at
      v.earliest
  | Refresh, Bank_busy ->
    Printf.sprintf "refresh at %d: bank not precharged" v.at
  | Refresh, _ ->
    Printf.sprintf "refresh at %d before tRP allows (%d)" v.at v.earliest

let enforce = function
  | [] -> ()
  | v :: _ -> raise (Timing_violation (message v))

(* Commands check legality first and apply their state transition only
   when legal, so an illegal command never corrupts the tracked state
   (the bank FSM relied on exactly that before the extraction). *)

let activate t ~bank ~at ~row =
  let viol = ref [] in
  let push kind earliest =
    viol := { command = Activate; kind; bank; at; earliest } :: !viol
  in
  (match t.states.(bank) with Active _ -> push Bank_busy at | Idle -> ());
  if at < t.next_activate.(bank) then push Act_to_act t.next_activate.(bank);
  (* tRRD / tFAW order activates across *different* banks of a rank; a
     single-bank checker is a plain bank FSM, where same-bank spacing
     is already governed by the (longer) tRC window. *)
  if Array.length t.states > 1 then begin
    (match t.act_history with
     | last :: _ when at < last + t.timing.Timing.trrd ->
       push Act_spacing (last + t.timing.Timing.trrd)
     | _ -> ());
    match List.nth_opt t.act_history 3 with
    | Some fourth when at < fourth + t.timing.Timing.tfaw ->
      push Four_activate (fourth + t.timing.Timing.tfaw)
    | _ -> ()
  end;
  let violations = List.rev !viol in
  if violations = [] then begin
    t.states.(bank) <- Active row;
    t.next_column.(bank) <- at + t.timing.Timing.trcd;
    t.next_precharge.(bank) <- at + t.timing.Timing.tras;
    t.next_activate.(bank) <- at + t.timing.Timing.trc;
    t.act_history <- at :: t.act_history;
    match t.act_history with
    | a :: b :: c :: d :: _ -> t.act_history <- [ a; b; c; d ]
    | _ -> ()
  end;
  violations

let column t ~bank ~at ~write =
  let command = if write then Write else Read in
  match t.states.(bank) with
  | Idle -> [ { command; kind = Bank_busy; bank; at; earliest = at } ]
  | Active _ ->
    if at < t.next_column.(bank) then
      [ { command; kind = Col_timing; bank; at;
          earliest = t.next_column.(bank) } ]
    else begin
      t.next_column.(bank) <- at + t.timing.Timing.tccd;
      let release =
        if write then
          at + t.timing.Timing.twl + t.timing.Timing.tccd
          + t.timing.Timing.twr
        else at + t.timing.Timing.trtp
      in
      t.next_precharge.(bank) <- max t.next_precharge.(bank) release;
      []
    end

let precharge t ~bank ~at =
  match t.states.(bank) with
  | Idle -> [ { command = Precharge; kind = Bank_busy; bank; at; earliest = at } ]
  | Active _ ->
    if at < t.next_precharge.(bank) then
      [ { command = Precharge; kind = Pre_timing; bank; at;
          earliest = t.next_precharge.(bank) } ]
    else begin
      t.states.(bank) <- Idle;
      t.next_activate.(bank) <-
        max t.next_activate.(bank) (at + t.timing.Timing.trp);
      []
    end

let refresh t ~bank ~at =
  match t.states.(bank) with
  | Active _ -> [ { command = Refresh; kind = Bank_busy; bank; at; earliest = at } ]
  | Idle ->
    if at < t.next_activate.(bank) then
      [ { command = Refresh; kind = Ref_timing; bank; at;
          earliest = t.next_activate.(bank) } ]
    else begin
      t.next_activate.(bank) <- at + t.timing.Timing.trfc;
      []
    end

(* ----- pattern replay ---------------------------------------------- *)

type issue = {
  slot : int;
  iteration : int;
  command : command;
  bank : int;
  at : int;
  earliest : int;
  binding : kind option;
  violations : violation list;
}

(* Enough loop iterations to wrap the bank rotation at least once. *)
let replay_iterations ~banks ~acts =
  let acts = max 1 acts in
  min 64 (((banks + acts - 1) / acts) + 2)

(* Replay a command loop the way a datasheet current-measurement loop
   runs it: activates rotate round-robin across the banks, column
   commands go to the most recently activated bank, precharges close
   the oldest open bank; enough loop iterations to wrap the bank
   rotation at least once.  Extracted from the lint pattern pass so
   `vdram lint`, `vdram check` and the simulator share one replay
   discipline and can never disagree about a pattern's legality.

   The trace variant records every non-nop command issue with the
   timing gate that bound it — the raw material for the `vdram
   advise` slack/utilization analyses — and is the single replay
   loop; {!replay_pattern} projects the activate-band violations out
   of it. *)
let replay_trace timing ~banks (p : Vdram_core.Pattern.t) =
  let module Pattern = Vdram_core.Pattern in
  let slots =
    List.concat_map
      (fun (c, n) -> List.init n (fun _ -> c))
      p.Pattern.slots
  in
  let cycles = List.length slots in
  if cycles = 0 || banks < 1 then ([], 0)
  else begin
    let acts = Pattern.count p Pattern.Act in
    let iters = replay_iterations ~banks ~acts in
    let rank = create timing ~banks in
    let next_bank = ref 0 in
    let last_bank = ref 0 in
    let open_order = ref [] in
    let issues = ref [] in
    let record i = issues := i :: !issues in
    (* The gate with the latest earliest-cycle is the binding
       constraint; row-state problems are violations, not gates. *)
    let bind gates =
      List.fold_left
        (fun (e, b) (gate, kind) ->
          if gate > e then (gate, Some kind) else (e, b))
        (0, None) gates
    in
    for iter = 0 to iters - 1 do
      List.iteri
        (fun idx cmd ->
          let at = (iter * cycles) + idx in
          match cmd with
          | Pattern.Nop -> ()
          | Pattern.Act ->
            let bank = !next_bank in
            next_bank := (bank + 1) mod banks;
            let rank_gates =
              if banks > 1 then
                (match rank.act_history with
                 | last :: _ ->
                   [ (last + timing.Timing.trrd, Act_spacing) ]
                 | [] -> [])
                @ (match List.nth_opt rank.act_history 3 with
                   | Some fourth ->
                     [ (fourth + timing.Timing.tfaw, Four_activate) ]
                   | None -> [])
              else []
            in
            let earliest, binding =
              bind ((rank.next_activate.(bank), Act_to_act) :: rank_gates)
            in
            let violations = activate rank ~bank ~at ~row:0 in
            if violations = [] then begin
              last_bank := bank;
              open_order := !open_order @ [ bank ]
            end;
            record { slot = idx; iteration = iter; command = Activate;
                     bank; at; earliest; binding; violations }
          | Pattern.Rd | Pattern.Wr ->
            let write = cmd = Pattern.Wr in
            let bank = !last_bank in
            let earliest, binding =
              match rank.states.(bank) with
              | Active _ when rank.next_column.(bank) > 0 ->
                (rank.next_column.(bank), Some Col_timing)
              | _ -> (0, None)
            in
            let violations = column rank ~bank ~at ~write in
            record { slot = idx; iteration = iter;
                     command = (if write then Write else Read);
                     bank; at; earliest; binding; violations }
          | Pattern.Pre ->
            (match !open_order with
             | [] ->
               (* Nothing open to close: the shared discipline skips
                  the command (recorded bankless for the trace). *)
               record { slot = idx; iteration = iter; command = Precharge;
                        bank = -1; at; earliest = 0; binding = None;
                        violations = [] }
             | bank :: rest ->
               let earliest, binding =
                 match rank.states.(bank) with
                 | Active _ when rank.next_precharge.(bank) > 0 ->
                   (rank.next_precharge.(bank), Some Pre_timing)
                 | _ -> (0, None)
               in
               let violations = precharge rank ~bank ~at in
               if violations = [] then open_order := rest;
               record { slot = idx; iteration = iter; command = Precharge;
                        bank; at; earliest; binding; violations }))
        slots
    done;
    (List.rev !issues, iters * cycles)
  end

let replay_pattern timing ~banks (p : Vdram_core.Pattern.t) =
  let module Pattern = Vdram_core.Pattern in
  let acts = Pattern.count p Pattern.Act in
  if Pattern.cycles p = 0 || acts = 0 || banks < 1 then ([], 0)
  else begin
    let issues, replayed = replay_trace timing ~banks p in
    (* Only activate-band violations surface: datasheet measurement
       loops under-space column/precharge windows on purpose (they
       set a power mix, not a schedulable trace), and the V08xx band
       has always judged exactly the activate windows. *)
    let viols =
      List.concat_map
        (fun i -> if i.command = Activate then i.violations else [])
        issues
    in
    (viols, replayed)
  end

(* ----- steady-state utilization ------------------------------------ *)

type usage = {
  command_bus : float;
  data_bus : float;
  bank_open : float;
}

let pattern_usage timing ~banks (p : Vdram_core.Pattern.t) =
  let module Pattern = Vdram_core.Pattern in
  let cycles = Pattern.cycles p in
  if cycles = 0 || banks < 1 then
    { command_bus = 0.0; data_bus = 0.0; bank_open = 0.0 }
  else begin
    let nops = Pattern.count p Pattern.Nop in
    let columns = Pattern.count p Pattern.Rd + Pattern.count p Pattern.Wr in
    let command_bus =
      float_of_int (cycles - nops) /. float_of_int cycles
    in
    let data_bus =
      Float.min 1.0
        (float_of_int (columns * timing.Timing.tccd) /. float_of_int cycles)
    in
    let issues, replayed = replay_trace timing ~banks p in
    (* Integrate the open-bank count over the steady window (first
       iteration dropped as warm-up); events outside the window still
       move the count, they just accrue no area. *)
    let w0 = cycles and w1 = replayed in
    let area = ref 0 and opened = ref 0 and cursor = ref w0 in
    List.iter
      (fun i ->
        if i.violations = [] && i.bank >= 0 then begin
          let delta =
            match i.command with
            | Activate -> 1
            | Precharge -> -1
            | _ -> 0
          in
          if delta <> 0 then begin
            let t = max w0 (min w1 i.at) in
            if t > !cursor then begin
              area := !area + (!opened * (t - !cursor));
              cursor := t
            end;
            opened := !opened + delta
          end
        end)
      issues;
    if w1 > !cursor then area := !area + (!opened * (w1 - !cursor));
    let bank_open =
      if w1 > w0 then
        float_of_int !area /. float_of_int ((w1 - w0) * banks)
      else 0.0
    in
    { command_bus; data_bus; bank_open }
  end
