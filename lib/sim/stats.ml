(* Simulation counters. *)

type t = {
  cycles : int;
  activates : int;
  precharges : int;
  reads : int;
  writes : int;
  refreshes : int;
  refresh_row_cycles : int;
  row_hits : int;
  row_misses : int;
  powerdown_cycles : int;
  selfrefresh_cycles : int;
  requests : int;
  latency_sum : int;
  latency_max : int;
}

let zero =
  {
    cycles = 0;
    activates = 0;
    precharges = 0;
    reads = 0;
    writes = 0;
    refreshes = 0;
    refresh_row_cycles = 0;
    row_hits = 0;
    row_misses = 0;
    powerdown_cycles = 0;
    selfrefresh_cycles = 0;
    requests = 0;
    latency_sum = 0;
    latency_max = 0;
  }

let row_hit_rate t =
  let total = t.row_hits + t.row_misses in
  if total = 0 then 0.0 else float_of_int t.row_hits /. float_of_int total

let average_latency t =
  if t.requests = 0 then 0.0
  else float_of_int t.latency_sum /. float_of_int t.requests

let bits_transferred t ~bits_per_command =
  float_of_int ((t.reads + t.writes) * bits_per_command)

let pp ppf t =
  Format.fprintf ppf
    "%d cycles: %d act, %d pre, %d rd, %d wr, %d ref; row hit %.0f%%; \
     %d pd-cycles; avg latency %.1f (max %d)"
    t.cycles t.activates t.precharges t.reads t.writes t.refreshes
    (100.0 *. row_hit_rate t)
    (t.powerdown_cycles + t.selfrefresh_cycles)
    (average_latency t) t.latency_max
