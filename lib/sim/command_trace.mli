(** Command-level power interface (DRAMPower-style).

    Memory-system simulators usually produce DRAM *command* traces
    (activate/precharge/read/write/refresh with cycle stamps), not
    request streams.  This module validates such a trace against the
    device's timing constraints with the bank state machines and
    integrates its energy with the analytical model — the paper's
    model driven by an external simulator. *)

type command =
  | Act of int * int   (** bank, row *)
  | Pre of int         (** bank *)
  | Prea               (** precharge all *)
  | Rd of int          (** bank *)
  | Wr of int          (** bank *)
  | Ref
  | Nop

type entry = {
  cycle : int;
  command : command;
}

type violation = {
  at : int;
  message : string;
}

type result = {
  stats : Stats.t;
  energy : Energy_model.report;
  violations : violation list;
}

val run :
  ?strict:bool ->
  Vdram_core.Config.t ->
  entry list ->
  result
(** Replay a command trace.  Entries must be sorted by cycle; at most
    one command per cycle (the command bus).  With [strict] (default)
    the first timing violation raises [Invalid_argument]; without it
    violations are collected and the offending command is dropped.
    The returned energy covers the trace duration with background
    power for every cycle. *)

val parse : string -> (entry list, string) Stdlib.result
(** Parse a textual command trace, one command per line:
    [<cycle> ACT <bank> <row>], [<cycle> PRE <bank>], [<cycle> PREA],
    [<cycle> RD <bank>], [<cycle> WR <bank>], [<cycle> REF].
    [#] starts a comment. *)

val load_file : string -> (entry list, string) Stdlib.result

val to_string : entry list -> string
(** Inverse of {!parse}. *)
