(* Simulation front-end. *)

module Config = Vdram_core.Config
module Spec = Vdram_core.Spec

type run = {
  policy : string;
  stats : Stats.t;
  energy : Energy_model.report;
  bandwidth : float;
  average_latency : float;
}

let simulate ?(page_policy = Controller.Open_page)
    ?(power_down = Controller.No_power_down) (cfg : Config.t) trace =
  let stats = Controller.run ~page_policy ~power_down cfg trace in
  let energy = Energy_model.of_stats cfg stats in
  let spec = cfg.Config.spec in
  let tck = 1.0 /. spec.Spec.control_clock in
  let bits =
    Stats.bits_transferred stats
      ~bits_per_command:(Spec.bits_per_column_command spec)
  in
  {
    policy =
      Printf.sprintf "%s, %s"
        (Controller.page_policy_name page_policy)
        (Controller.power_down_name power_down);
    stats;
    energy;
    bandwidth =
      (if energy.Energy_model.duration > 0.0 then
         bits /. energy.Energy_model.duration
       else 0.0);
    average_latency = Stats.average_latency stats *. tck;
  }

let compare_policies cfg trace policies =
  List.map
    (fun (page_policy, power_down) ->
      simulate ~page_policy ~power_down cfg trace)
    policies

let pp_run ppf r =
  Format.fprintf ppf
    "@[<v>[%s]@,  %a@,  bandwidth %s, avg latency %s@]" r.policy
    Energy_model.pp r.energy
    (Vdram_units.Si.format_eng ~unit_symbol:"bps" r.bandwidth)
    (Vdram_units.Si.format_eng ~unit_symbol:"s" r.average_latency)
