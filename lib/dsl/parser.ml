(* Line-oriented parser for the description language. *)

module Span = Vdram_diagnostics.Span
module Diagnostic = Vdram_diagnostics.Diagnostic

type error = {
  line : int;
  message : string;
  code : string;
  span : Span.t;
}

let pp_error ppf e =
  if e.code = "" then Format.fprintf ppf "line %d: %s" e.line e.message
  else Format.fprintf ppf "line %d: %s [%s]" e.line e.message e.code

let error ~code ?span line fmt =
  Printf.ksprintf
    (fun message ->
      let span =
        match span with Some s -> s | None -> Span.of_line line
      in
      { line; message; code; span })
    fmt

let to_diagnostic e =
  Diagnostic.v ~span:e.span ~severity:Diagnostic.Error
    ~code:(if e.code = "" then "V0200" else e.code)
    e.message

(* ----- tokenizer --------------------------------------------------- *)

(* A raw token with its 1-based column range (end exclusive). *)
type tok = {
  text : string;
  col : int;
  col_end : int;
}

(* Scan one physical line into tokens.  [#] and [//] start a comment
   when they stand at the start of the line or right after whitespace;
   a marker glued to the end of a token still truncates (historical
   behaviour) but is reported via [embedded] — the column of the
   marker — so the caller can emit a diagnostic instead of dropping
   text silently. *)
let tokenize raw =
  let n = String.length raw in
  let is_ws c = c = ' ' || c = '\t' || c = '\r' in
  let buf = Buffer.create 16 in
  let toks = ref [] in
  let start = ref 0 in
  let embedded = ref None in
  let flush stop =
    if Buffer.length buf > 0 then begin
      toks :=
        { text = Buffer.contents buf; col = !start + 1; col_end = stop + 1 }
        :: !toks;
      Buffer.clear buf
    end
  in
  let rec go i in_tok =
    if i >= n then flush i
    else
      let c = raw.[i] in
      let comment =
        c = '#' || (c = '/' && i + 1 < n && raw.[i + 1] = '/')
      in
      if comment then begin
        if in_tok && !embedded = None then embedded := Some (i + 1);
        flush i
      end
      else if is_ws c then begin
        flush i;
        go (i + 1) false
      end
      else begin
        if not in_tok then start := i;
        Buffer.add_char buf c;
        go (i + 1) true
      end
  in
  go 0 false;
  (List.rev !toks, !embedded)

(* Fuse standalone '=' tokens: ["blocks"; "="; "A1"] and
   ["loop="; "act"] keep their shape, but ["IO"; "width"; "="; "16"]
   becomes ["IO"; "width=16"].  Fused tokens span from the key's first
   to the value's last column. *)
let fuse_equals toks =
  let join a b =
    { text = a.text ^ "=" ^ b.text; col = a.col; col_end = b.col_end }
  in
  let rec go acc = function
    | [] -> List.rev acc
    | a :: eq :: b :: rest
      when eq.text = "=" && a.text <> "blocks" && a.text <> "loop" ->
      go (join a b :: acc) rest
    | a :: eq :: rest
      when eq.text = "=" && (a.text = "blocks" || a.text = "loop") ->
      go (eq :: a :: acc) rest
    | t :: rest -> go (t :: acc) rest
  in
  go [] toks

let is_section_header toks =
  match toks with
  | [ w ] ->
    String.length w.text > 0
    && w.text.[0] >= 'A'
    && w.text.[0] <= 'Z'
    && not (String.contains w.text '=')
  | _ -> false

(* A positional-list statement: "<kw> blocks = a b c" or
   "Pattern loop= a b c". *)
let positional_tail toks =
  match toks with
  | kw :: ({ text = "blocks"; _ } as b) :: { text = "="; _ } :: rest ->
    Some (kw, [ (b, "blocks", "") ], rest)
  | ({ text = "Pattern"; _ } as kw) :: ({ text = "loop="; _ } as l) :: rest ->
    Some (kw, [ (l, "loop", "") ], rest)
  | ({ text = "Pattern"; _ } as kw)
    :: ({ text = "loop"; _ } as l) :: { text = "="; _ } :: rest ->
    Some (kw, [ (l, "loop", "") ], rest)
  | _ -> None

let parse_stmt ?file ~line toks =
  let span (t : tok) = Span.of_cols ?file ~start:t.col ~stop:t.col_end line in
  let mk kw args positional =
    {
      Ast.line;
      keyword = kw.text;
      keyword_span = span kw;
      args = List.map (fun (_, k, v) -> (k, v)) args;
      arg_spans = List.map (fun (t, k, _) -> (k, span t)) args;
      positional = List.map (fun t -> t.text) positional;
      positional_spans = List.map span positional;
    }
  in
  match positional_tail toks with
  | Some (kw, args, positional) -> Ok (mk kw args positional)
  | None ->
    (match toks with
     | [] -> assert false
     | kw :: rest ->
       if String.contains kw.text '=' then
         Error
           (error ~code:"V0004" ~span:(span kw) line
              "statement must start with a keyword, got %S" kw.text)
       else
         let rec split args positional = function
           | [] -> Ok (List.rev args, List.rev positional)
           | t :: rest ->
             (match String.index_opt t.text '=' with
              | Some 0 ->
                Error
                  (error ~code:"V0002" ~span:(span t) line
                     "empty key in %S" t.text)
              | Some i when i = String.length t.text - 1 ->
                Error
                  (error ~code:"V0003" ~span:(span t) line
                     "missing value in %S" t.text)
              | Some i ->
                let k = String.sub t.text 0 i
                and v =
                  String.sub t.text (i + 1) (String.length t.text - i - 1)
                in
                split ((t, k, v) :: args) positional rest
              | None -> split args (t :: positional) rest)
         in
         (match split [] [] rest with
          | Ok (args, positional) -> Ok (mk kw args positional)
          | Error _ as e -> e))

let parse_with_warnings ?file source =
  let warnings = ref [] in
  let lines = String.split_on_char '\n' source in
  let close (hdr_line, name, hdr_span, stmts) sections =
    {
      Ast.section_line = hdr_line;
      section_name = name;
      section_span = hdr_span;
      stmts = List.rev stmts;
    }
    :: sections
  in
  let rec go lineno sections current = function
    | [] ->
      let sections =
        match current with
        | None -> sections
        | Some c -> close c sections
      in
      Ok (List.rev sections)
    | raw :: rest ->
      let raw_toks, embedded = tokenize raw in
      (match embedded with
       | Some col ->
         warnings :=
           Diagnostic.warningf ~code:"V0005"
             ~span:(Span.of_cols ?file ~start:col ~stop:(col + 1) lineno)
             ~help:
               "insert whitespace before the comment marker to comment, \
                or remove it to keep the text"
             ~fixes:
               [ Vdram_diagnostics.Fix.v
                   ~span:(Span.of_cols ?file ~start:col ~stop:col lineno)
                   " " ]
             "comment marker glued to a token truncates the rest of the line"
           :: !warnings
       | None -> ());
      let toks = fuse_equals raw_toks in
      if toks = [] then go (lineno + 1) sections current rest
      else if is_section_header toks then begin
        let hdr = List.hd toks in
        let hdr_span =
          Span.of_cols ?file ~start:hdr.col ~stop:hdr.col_end lineno
        in
        let sections =
          match current with
          | None -> sections
          | Some c -> close c sections
        in
        go (lineno + 1) sections
          (Some (lineno, hdr.text, hdr_span, []))
          rest
      end
      else
        match current with
        | None ->
          let t = List.hd toks in
          Error
            (error ~code:"V0001"
               ~span:(Span.of_cols ?file ~start:t.col ~stop:t.col_end lineno)
               lineno "statement before any section header")
        | Some (hdr_line, name, hdr_span, stmts) ->
          (match parse_stmt ?file ~line:lineno toks with
           | Ok stmt ->
             go (lineno + 1) sections
               (Some (hdr_line, name, hdr_span, stmt :: stmts))
               rest
           | Error _ as e -> e)
  in
  let result = go 1 [] None lines in
  (result, List.rev !warnings)

let parse ?file source = fst (parse_with_warnings ?file source)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> parse ~file:path source
  | exception Sys_error msg ->
    Error { line = 0; message = msg; code = "V0006"; span = Span.none }
