(* Line-oriented parser for the description language. *)

type error = {
  line : int;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

let error line fmt = Printf.ksprintf (fun message -> { line; message }) fmt

let strip_comment line =
  let cut_at idx = String.sub line 0 idx in
  let hash = String.index_opt line '#' in
  let slashes =
    let rec find i =
      if i + 1 >= String.length line then None
      else if line.[i] = '/' && line.[i + 1] = '/' then Some i
      else find (i + 1)
    in
    find 0
  in
  match (hash, slashes) with
  | None, None -> line
  | Some i, None | None, Some i -> cut_at i
  | Some i, Some j -> cut_at (min i j)

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun t -> t <> "")

(* Fuse standalone '=' tokens: ["blocks"; "="; "A1"] and
   ["loop="; "act"] keep their shape, but ["IO"; "width"; "="; "16"]
   becomes ["IO"; "width=16"]. *)
let fuse_equals toks =
  let rec go acc = function
    | [] -> List.rev acc
    | a :: "=" :: b :: rest when a <> "blocks" && a <> "loop" ->
      go ((a ^ "=" ^ b) :: acc) rest
    | a :: "=" :: rest when a = "blocks" || a = "loop" ->
      go ("=" :: a :: acc) rest
    | t :: rest -> go (t :: acc) rest
  in
  go [] toks

let is_section_header toks =
  match toks with
  | [ w ] ->
    String.length w > 0
    && w.[0] >= 'A'
    && w.[0] <= 'Z'
    && not (String.contains w '=')
  | _ -> false

(* A positional-list statement: "<kw> blocks = a b c" or
   "Pattern loop= a b c". *)
let positional_tail toks =
  match toks with
  | kw :: "blocks" :: "=" :: rest -> Some (kw, [ ("blocks", "") ], rest)
  | "Pattern" :: "loop=" :: rest -> Some ("Pattern", [ ("loop", "") ], rest)
  | "Pattern" :: "loop" :: "=" :: rest ->
    Some ("Pattern", [ ("loop", "") ], rest)
  | _ -> None

let parse_stmt ~line toks =
  match positional_tail toks with
  | Some (kw, args, positional) ->
    Ok { Ast.line; keyword = kw; args; positional }
  | None ->
    (match toks with
     | [] -> assert false
     | kw :: rest ->
       if String.contains kw '=' then
         Error (error line "statement must start with a keyword, got %S" kw)
       else
         let rec split args positional = function
           | [] -> Ok (List.rev args, List.rev positional)
           | t :: rest ->
             (match String.index_opt t '=' with
              | Some 0 -> Error (error line "empty key in %S" t)
              | Some i when i = String.length t - 1 ->
                Error (error line "missing value in %S" t)
              | Some i ->
                let k = String.sub t 0 i
                and v = String.sub t (i + 1) (String.length t - i - 1) in
                split ((k, v) :: args) positional rest
              | None -> split args (t :: positional) rest)
         in
         (match split [] [] rest with
          | Ok (args, positional) ->
            Ok { Ast.line; keyword = kw; args; positional }
          | Error _ as e -> e))

let parse source =
  let lines = String.split_on_char '\n' source in
  let rec go lineno sections current = function
    | [] ->
      let sections =
        match current with
        | None -> sections
        | Some (hdr_line, name, stmts) ->
          { Ast.section_line = hdr_line;
            section_name = name;
            stmts = List.rev stmts }
          :: sections
      in
      Ok (List.rev sections)
    | raw :: rest ->
      let toks = fuse_equals (tokens (strip_comment raw)) in
      if toks = [] then go (lineno + 1) sections current rest
      else if is_section_header toks then begin
        let name = List.hd toks in
        let sections =
          match current with
          | None -> sections
          | Some (hdr_line, n, stmts) ->
            { Ast.section_line = hdr_line;
              section_name = n;
              stmts = List.rev stmts }
            :: sections
        in
        go (lineno + 1) sections (Some (lineno, name, [])) rest
      end
      else
        match current with
        | None ->
          Error (error lineno "statement before any section header")
        | Some (hdr_line, name, stmts) ->
          (match parse_stmt ~line:lineno toks with
           | Ok stmt ->
             go (lineno + 1) sections
               (Some (hdr_line, name, stmt :: stmts))
               rest
           | Error _ as e -> e)
  in
  go 1 [] None lines

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> parse source
  | exception Sys_error msg -> Error { line = 0; message = msg }
