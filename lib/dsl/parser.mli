(** Parser of the DRAM description language (the "parse input file /
    syntax check" stages of Figure 4).

    Every token is tracked to its file/line/column range, so parse
    errors — and everything downstream that reuses the AST's spans —
    point at the exact offending text. *)

type error = {
  line : int;
  message : string;
  code : string;                      (** stable [V####] lint code *)
  span : Vdram_diagnostics.Span.t;
}

val pp_error : Format.formatter -> error -> unit
(** ["line 12: <message> [V0003]"]. *)

val error :
  code:string -> ?span:Vdram_diagnostics.Span.t -> int ->
  ('a, unit, string, error) format4 -> 'a
(** Build an [error]; the span defaults to the whole line. *)

val to_diagnostic : error -> Vdram_diagnostics.Diagnostic.t

val parse : ?file:string -> string -> (Ast.t, error) result
(** Parse a full description source.  Statements before any section
    header are an error, as are malformed assignments.  [file] is
    recorded in the spans. *)

val parse_with_warnings :
  ?file:string -> string ->
  (Ast.t, error) result * Vdram_diagnostics.Diagnostic.t list
(** Like {!parse}, but also returns non-fatal findings: today, a
    [V0005] warning for every [#] or [//] comment marker glued to the
    end of a token (which truncates the line — historically silently). *)

val parse_file : string -> (Ast.t, error) result
(** Read and parse a file; I/O failures are reported as a [V0006]
    [error] on line 0. *)
