(** Parser of the DRAM description language (the "parse input file /
    syntax check" stages of Figure 4). *)

type error = {
  line : int;
  message : string;
}

val pp_error : Format.formatter -> error -> unit
(** ["line 12: <message>"]. *)

val parse : string -> (Ast.t, error) result
(** Parse a full description source.  Statements before any section
    header are an error, as are malformed assignments. *)

val parse_file : string -> (Ast.t, error) result
(** Read and parse a file; I/O failures are reported as an [error] on
    line 0. *)
