(** Abstract syntax of the DRAM description language.

    The language is line oriented.  A bare capitalised word starts a
    section ([FloorplanPhysical], [Technology], ...); every other
    non-empty line is a statement: a keyword followed by [key=value]
    assignments and/or bare positional tokens.  [#] and [//] start
    comments.  Two statement forms get special treatment by the
    parser: [<axis> blocks = n1 n2 ...] and [Pattern loop= cmd ...],
    whose tails are positional lists. *)

type stmt = {
  line : int;                        (** 1-based source line *)
  keyword : string;
  args : (string * string) list;     (** [key=value] assignments, in order *)
  positional : string list;          (** bare tokens after the keyword *)
}

type section = {
  section_line : int;
  section_name : string;
  stmts : stmt list;
}

type t = section list

val arg : stmt -> string -> string option
(** Case-insensitive lookup of an assignment. *)

val find_sections : t -> string -> section list
(** All sections with a name, case-insensitive. *)

val pp_stmt : Format.formatter -> stmt -> unit
val pp : Format.formatter -> t -> unit
