(** Abstract syntax of the DRAM description language.

    The language is line oriented.  A bare capitalised word starts a
    section ([FloorplanPhysical], [Technology], ...); every other
    non-empty line is a statement: a keyword followed by [key=value]
    assignments and/or bare positional tokens.  [#] and [//] start
    comments.  Two statement forms get special treatment by the
    parser: [<axis> blocks = n1 n2 ...] and [Pattern loop= cmd ...],
    whose tails are positional lists.

    Every token carries a {!Vdram_diagnostics.Span.t} recording where
    in the source it came from, so later analysis passes can point
    diagnostics at the exact file/line/column range. *)

type stmt = {
  line : int;                        (** 1-based source line *)
  keyword : string;
  keyword_span : Vdram_diagnostics.Span.t;
  args : (string * string) list;     (** [key=value] assignments, in order *)
  arg_spans : (string * Vdram_diagnostics.Span.t) list;
      (** span of each whole [key=value] token, same order as [args] *)
  positional : string list;          (** bare tokens after the keyword *)
  positional_spans : Vdram_diagnostics.Span.t list;
      (** spans of the positional tokens, same order *)
}

type section = {
  section_line : int;
  section_name : string;
  section_span : Vdram_diagnostics.Span.t;
  stmts : stmt list;
}

type t = section list

val arg : stmt -> string -> string option
(** Case-insensitive lookup of an assignment. *)

val arg_span : stmt -> string -> Vdram_diagnostics.Span.t option
(** Case-insensitive lookup of an assignment's source span. *)

val find_sections : t -> string -> section list
(** All sections with a name, case-insensitive. *)

val pp_stmt : Format.formatter -> stmt -> unit
val pp : Format.formatter -> t -> unit
