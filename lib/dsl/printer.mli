(** Render a model configuration back into description-language
    source.  [load_string (to_dsl cfg)] elaborates to an equivalent
    configuration (same power results), which the test suite checks. *)

val to_dsl : ?pattern:Vdram_core.Pattern.t -> Vdram_core.Config.t -> string

val print : Ast.t -> string
(** Render a parsed AST back to source.  Whitespace and comments are
    normalized (one statement per line, single spaces, sections
    separated by a blank line); tokens are reproduced verbatim, so
    [parse (print ast)] yields an AST identical to [ast] up to source
    positions — the safety property behind [vdram lint --fix]. *)
