(** Render a model configuration back into description-language
    source.  [load_string (to_dsl cfg)] elaborates to an equivalent
    configuration (same power results), which the test suite checks. *)

val to_dsl : ?pattern:Vdram_core.Pattern.t -> Vdram_core.Config.t -> string
