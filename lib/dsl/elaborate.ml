(* Elaboration: AST -> Config.t (+ optional Pattern).

   The elaborator accumulates every problem it finds as a spanned
   diagnostic instead of stopping at the first one: each failed
   lookup or malformed value emits its diagnostic and falls back to
   the roadmap default (or skips the offending segment/block), so one
   run reports the full list the way the dimensional pass does.  The
   elaborated configuration is only meaningful when no error
   diagnostics were emitted. *)

module Node = Vdram_tech.Node
module Scaling = Vdram_tech.Scaling
module Roadmap = Vdram_tech.Roadmap
module Params = Vdram_tech.Params
module Domains = Vdram_circuits.Domains
module Bus = Vdram_circuits.Bus
module Logic_block = Vdram_circuits.Logic_block
module Floorplan = Vdram_floorplan.Floorplan
module Array_geometry = Vdram_floorplan.Array_geometry
module Config = Vdram_core.Config
module Spec = Vdram_core.Spec
module Pattern = Vdram_core.Pattern
module Q = Vdram_units.Quantity
module Span = Vdram_diagnostics.Span
module Diagnostic = Vdram_diagnostics.Diagnostic
module Fix = Vdram_diagnostics.Fix
module Suggest = Vdram_diagnostics.Suggest

type t = {
  config : Config.t;
  pattern : Pattern.t option;
}

type ctx = { mutable diags : Diagnostic.t list }

let emit ctx d = ctx.diags <- d :: ctx.diags

let err ctx ?(code = "V0200") ?span ?notes ?help ?fixes line fmt =
  Printf.ksprintf
    (fun message ->
      let span = match span with Some s -> s | None -> Span.of_line line in
      emit ctx
        (Diagnostic.v ~span ?notes ?help ?fixes ~severity:Diagnostic.Error
           ~code message))
    fmt

(* Emit pointing at a statement's keyword token. *)
let err_kw ctx ~code ?notes ?help ?fixes (stmt : Ast.stmt) fmt =
  err ctx ~code ~span:stmt.Ast.keyword_span ?notes ?help ?fixes stmt.Ast.line
    fmt

(* Emit pointing at a statement's [key=value] token. *)
let err_arg ctx ~code ?notes ?help ?fixes (stmt : Ast.stmt) key fmt =
  let span =
    match Ast.arg_span stmt key with
    | Some s -> s
    | None -> stmt.Ast.keyword_span
  in
  err ctx ~code ~span ?notes ?help ?fixes stmt.Ast.line fmt

let literal_code = function
  | Q.Malformed -> "V0102"
  | Q.Unknown_unit -> "V0103"
  | Q.Mismatch _ -> "V0101"
  | Q.Non_finite -> "V0104"

let lower = String.lowercase_ascii

(* Parse an argument of a statement with an expected dimension.
   [None] both when the argument is absent and when its literal is bad
   (the diagnostic has been emitted) — callers fall back to defaults
   either way. *)
let quantity ctx (stmt : Ast.stmt) key dim =
  match Ast.arg stmt key with
  | None -> None
  | Some raw ->
    (match Q.classify dim raw with
     | Ok v -> Some v
     | Error (kind, msg) ->
       err_arg ctx ~code:(literal_code kind) stmt key "%s: %s" key msg;
       None)

let integer ctx (stmt : Ast.stmt) key =
  match quantity ctx stmt key Q.Scalar with
  | None -> None
  | Some v ->
    if Float.is_integer v && v >= 0.0 then Some (int_of_float v)
    else begin
      err_arg ctx ~code:"V0204" stmt key "%s must be a non-negative integer"
        key;
      None
    end

(* Collect all statements of the sections with a name. *)
let stmts_of ast name =
  List.concat_map (fun s -> s.Ast.stmts) (Ast.find_sections ast name)

let stmt_with ast section keyword =
  List.find_opt
    (fun (s : Ast.stmt) -> lower s.Ast.keyword = lower keyword)
    (stmts_of ast section)

(* A fix replacing just the key part of a [key=value] token. *)
let key_fix (stmt : Ast.stmt) key replacement =
  match Ast.arg_span stmt key with
  | Some s when s.Span.col_start >= 1 ->
    let span =
      { s with Span.col_end = s.Span.col_start + String.length key }
    in
    [ Fix.v ~span replacement ]
  | _ -> []

(* Technology keys in Params.fields order. *)
let technology_keys =
  [ "toxlogic"; "toxhv"; "toxcell"; "lminlogic"; "cjlogic"; "lminhv";
    "cjhv"; "lcell"; "wcell"; "cbitline"; "ccell"; "blwlcoupling";
    "cwiremwl"; "mwlpredecode"; "wmwldecn"; "wmwldecp"; "mwldecactivity";
    "wwlctlloadn"; "wwlctlloadp"; "wlwdn"; "wlwdp"; "wlwdrestore";
    "cwirelwl"; "wsan"; "lsan"; "wsap"; "lsap"; "wsaeq"; "lsaeq";
    "wsabitswitch"; "lsabitswitch"; "wsamux"; "lsamux"; "wsanset";
    "lsanset"; "wsapset"; "lsapset"; "cwiresignal" ]
  @ [ "bitspercsl" ]

let technology_dims =
  let l = Q.Length
  and cl = Q.Cap_per_length
  and c = Q.Capacitance
  and fr = Q.Fraction
  and s = Q.Scalar in
  [ l; l; l; l; cl; l; cl; l; l; c; c; fr; cl; s; l; l; fr; l; l; l; l; l;
    cl; l; l; l; l; l; l; l; l; l; l; l; l; l; l; cl ]

let apply_technology ctx ast tech =
  let entries = List.combine technology_keys (technology_dims @ [ Q.Scalar ]) in
  let float_fields = Params.fields in
  List.fold_left
    (fun tech (stmt : Ast.stmt) ->
      List.fold_left
        (fun tech (orig_key, value) ->
          let key = lower orig_key in
          match List.assoc_opt key entries with
          | None ->
            let help, fixes =
              match Suggest.nearest ~candidates:technology_keys key with
              | Some best ->
                ( Some (Printf.sprintf "did you mean %S?" best),
                  key_fix stmt orig_key best )
              | None -> (None, [])
            in
            err_arg ctx ~code:"V0201" ?help ~fixes stmt orig_key
              "unknown technology parameter %S" key;
            tech
          | Some dim ->
            if key = "bitspercsl" then begin
              match Q.classify Q.Scalar value with
              | Ok v -> { tech with Params.bits_per_csl = int_of_float v }
              | Error (kind, msg) ->
                err_arg ctx ~code:(literal_code kind) stmt orig_key "%s: %s"
                  key msg;
                tech
            end
            else begin
              match Q.classify dim value with
              | Error (kind, msg) ->
                err_arg ctx ~code:(literal_code kind) stmt orig_key "%s: %s"
                  key msg;
                tech
              | Ok v ->
                (* Position of the key gives the field setter. *)
                let rec nth_setter keys fields =
                  match (keys, fields) with
                  | k :: _, (_, _, set) :: _ when k = key -> Some set
                  | _ :: ks, _ :: fs -> nth_setter ks fs
                  | _ -> None
                in
                (match nth_setter technology_keys float_fields with
                 | Some set -> set tech v
                 | None ->
                   err ctx ~code:"V0201" stmt.Ast.line
                     "internal: no setter for %s" key;
                   tech)
            end)
        tech stmt.Ast.args)
    tech
    (stmts_of ast "Technology")

(* Coordinates "i_j" used by the signaling floorplan. *)
let coord ctx (stmt : Ast.stmt) ~key raw =
  match String.split_on_char '_' raw with
  | [ i; j ] ->
    (match (int_of_string_opt i, int_of_string_opt j) with
     | Some i, Some j -> Some (i, j)
     | _ ->
       err_arg ctx ~code:"V0204" stmt key "malformed coordinate %S" raw;
       None)
  | _ ->
    err_arg ctx ~code:"V0204" stmt key "malformed coordinate %S (expected i_j)"
      raw;
    None

(* A coordinate checked against the declared grid (V0701). *)
let grid_coord ctx floorplan (stmt : Ast.stmt) ~key raw =
  match coord ctx stmt ~key raw with
  | None -> None
  | Some (i, j) ->
    let h = Array.length floorplan.Floorplan.horizontal in
    let v = Array.length floorplan.Floorplan.vertical in
    if i < 0 || i >= h || j < 0 || j >= v then begin
      err_arg ctx ~code:"V0701" stmt key
        ~notes:
          [ Printf.sprintf
              "the declared floorplan grid is %d x %d blocks (indices 0..%d \
               horizontally, 0..%d vertically)"
              h v (h - 1) (v - 1) ]
        "coordinate %d_%d is outside the declared floorplan grid" i j;
      None
    end
    else Some (i, j)

let bus_roles =
  [ ("writedata", Bus.Write_data); ("readdata", Bus.Read_data);
    ("rowaddress", Bus.Row_address); ("columnaddress", Bus.Column_address);
    ("coladdress", Bus.Column_address); ("bankaddress", Bus.Bank_address);
    ("command", Bus.Command); ("clock", Bus.Clock) ]

let bus_keywords =
  [ "WriteData"; "ReadData"; "RowAddress"; "ColumnAddress"; "BankAddress";
    "Command"; "Clock" ]

let segment_of_stmt ctx floorplan (stmt : Ast.stmt) =
  let length =
    match Ast.arg stmt "length" with
    | Some _ -> quantity ctx stmt "length" Q.Length
    | None ->
      (match (Ast.arg stmt "start", Ast.arg stmt "end") with
       | Some s, Some e ->
         (match
            ( grid_coord ctx floorplan stmt ~key:"start" s,
              grid_coord ctx floorplan stmt ~key:"end" e )
          with
          | Some a, Some b -> Some (Floorplan.route_length floorplan a b)
          | _ -> None)
       | _ ->
         (match Ast.arg stmt "inside" with
          | Some c ->
            let frac =
              Option.value ~default:1.0
                (quantity ctx stmt "fraction" Q.Fraction)
            in
            let dir =
              match Option.map lower (Ast.arg stmt "dir") with
              | Some "h" | None -> `H
              | Some "v" -> `V
              | Some d ->
                err_arg ctx ~code:"V0204" stmt "dir" "bad dir %S (h or v)" d;
                `H
            in
            (match grid_coord ctx floorplan stmt ~key:"inside" c with
             | Some ij ->
               Some (Floorplan.inside_length floorplan ij ~frac ~dir)
             | None -> None)
          | None ->
            err_kw ctx ~code:"V0205" stmt
              "segment needs length=, start=/end= or inside=";
            None))
  in
  match length with
  | None -> None
  | Some length ->
    let buffer =
      match (Ast.arg stmt "NchW", Ast.arg stmt "PchW") with
      | None, None -> None
      | Some _, Some _ ->
        (match
           (quantity ctx stmt "NchW" Q.Length, quantity ctx stmt "PchW" Q.Length)
         with
         | Some n, Some p -> Some (n, p)
         | _ -> None)
      | _ ->
        err_kw ctx ~code:"V0205" stmt "buffer needs both NchW= and PchW=";
        None
    in
    let mux =
      match Ast.arg stmt "mux" with
      | None -> None
      | Some raw ->
        (match String.split_on_char ':' raw with
         | [ "1"; n ] ->
           (match int_of_string_opt n with
            | Some n when n > 0 -> Some n
            | _ ->
              err_arg ctx ~code:"V0204" stmt "mux" "bad mux ratio %S" raw;
              None)
         | _ ->
           err_arg ctx ~code:"V0204" stmt "mux"
             "bad mux ratio %S (expected 1:n)" raw;
           None)
    in
    let toggle =
      Option.value ~default:1.0 (quantity ctx stmt "toggle" Q.Fraction)
    in
    Some
      (Bus.segment ?buffer ?mux ~toggle
         ~name:(Printf.sprintf "%s line %d" stmt.Ast.keyword stmt.Ast.line)
         ~length ())

let buses_of_signaling ctx ast floorplan ~(spec : Spec.t) ~default =
  let stmts = stmts_of ast "FloorplanSignaling" in
  if stmts = [] then default
  else begin
    (* Group segments per bus keyword, keeping statement order. *)
    let order = ref [] in
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (stmt : Ast.stmt) ->
        let key = lower stmt.Ast.keyword in
        match List.assoc_opt key bus_roles with
        | None ->
          let help, fixes =
            match Suggest.nearest ~candidates:bus_keywords key with
            | Some best ->
              ( Some (Printf.sprintf "did you mean %S?" best),
                [ Fix.v ~span:stmt.Ast.keyword_span best ] )
            | None -> (None, [])
          in
          err_kw ctx ~code:"V0202" ?help ~fixes stmt "unknown bus %S"
            stmt.Ast.keyword
        | Some role ->
          if not (Hashtbl.mem tbl key) then begin
            order := key :: !order;
            Hashtbl.add tbl key (role, ref None, ref [])
          end;
          let _, wires, segs = Hashtbl.find tbl key in
          (match integer ctx stmt "wires" with
           | Some w -> wires := Some w
           | None -> ());
          (match segment_of_stmt ctx floorplan stmt with
           | Some seg -> segs := seg :: !segs
           | None -> ()))
      stmts;
    let default_wires = function
      | Bus.Write_data | Bus.Read_data -> spec.Spec.io_width
      | Bus.Row_address -> spec.Spec.row_bits
      | Bus.Column_address -> spec.Spec.col_bits
      | Bus.Bank_address -> max 1 spec.Spec.bank_bits
      | Bus.Command -> spec.Spec.misc_control
      | Bus.Clock -> spec.Spec.clock_wires
    in
    let buses =
      List.rev !order
      |> List.filter_map (fun key ->
             let role, wires, segs = Hashtbl.find tbl key in
             match List.rev !segs with
             | [] -> None  (* every segment of this bus was invalid *)
             | segs ->
               Some
                 (Bus.v ~name:key ~role
                    ~wires:
                      (Option.value ~default:(default_wires role) !wires)
                    segs))
    in
    if buses = [] then default else buses
  end

let logic_of_section ctx ast ~default =
  let stmts = stmts_of ast "LogicBlocks" in
  if stmts = [] then default
  else
    let blocks =
      List.filter_map
        (fun (stmt : Ast.stmt) ->
          if lower stmt.Ast.keyword <> "block" then begin
            err_kw ctx ~code:"V0204" stmt
              "expected Block statement in LogicBlocks";
            None
          end
          else
            let name =
              match Ast.arg stmt "name" with
              | Some n -> Some n
              | None ->
                err_kw ctx ~code:"V0205" stmt "Block needs name=";
                None
            in
            let gates =
              match Ast.arg stmt "gates" with
              | None ->
                err_kw ctx ~code:"V0205" stmt "Block needs gates=";
                None
              | Some _ -> quantity ctx stmt "gates" Q.Scalar
            in
            let trigger =
              match Option.map lower (Ast.arg stmt "trigger") with
              | None | Some "always" -> Some Logic_block.Always
              | Some ops ->
                let op_of = function
                  | "act" | "activate" -> Some `Activate
                  | "pre" | "precharge" -> Some `Precharge
                  | "rd" | "read" -> Some `Read
                  | "wrt" | "wr" | "write" -> Some `Write
                  | o ->
                    err_arg ctx ~code:"V0204" stmt "trigger"
                      "bad trigger op %S" o;
                    None
                in
                let ops =
                  List.filter_map op_of (String.split_on_char ',' ops)
                in
                if ops = [] then None
                else Some (Logic_block.On_operation ops)
            in
            match (name, gates, trigger) with
            | Some name, Some gates, Some trigger ->
              Some
                (Logic_block.v ~name ~gates ~trigger
                   ?w_nmos:(quantity ctx stmt "wnmos" Q.Length)
                   ?w_pmos:(quantity ctx stmt "wpmos" Q.Length)
                   ?transistors_per_gate:
                     (quantity ctx stmt "transistors" Q.Scalar)
                   ?layout_density:(quantity ctx stmt "layout" Q.Fraction)
                   ?wiring_density:(quantity ctx stmt "wiring" Q.Fraction)
                   ?toggle:(quantity ctx stmt "toggle" Q.Fraction)
                   ())
            | _ -> None)
        stmts
    in
    if blocks = [] then default else blocks

let axis_blocks ctx ast ~axis ~geometry =
  let list_kw, size_kw =
    match axis with
    | `H -> ("horizontal", "sizehorizontal")
    | `V -> ("vertical", "sizevertical")
  in
  let stmts = stmts_of ast "FloorplanPhysical" in
  let blocks_stmt =
    List.find_opt (fun (s : Ast.stmt) -> lower s.Ast.keyword = list_kw) stmts
  in
  match blocks_stmt with
  | None -> None
  | Some stmt ->
    let sizes =
      List.concat_map
        (fun (s : Ast.stmt) ->
          if lower s.Ast.keyword = size_kw then
            List.filter_map
              (fun (k, v) ->
                match Q.classify Q.Length v with
                | Ok len -> Some (k, len)
                | Error (kind, msg) ->
                  err_arg ctx ~code:(literal_code kind) s k "%s: %s" k msg;
                  None)
              s.Ast.args
          else [])
        stmts
    in
    let array_size =
      match axis with
      | `H -> Array_geometry.block_width geometry
      | `V -> Array_geometry.block_height geometry
    in
    let block name span =
      let kind =
        match (if name = "" then ' ' else Char.uppercase_ascii name.[0]) with
        | 'A' -> Floorplan.Array_block
        | 'R' -> Floorplan.Row_logic
        | 'C' -> Floorplan.Column_logic
        | 'P' -> Floorplan.Center_stripe
        | _ -> Floorplan.Other name
      in
      let size =
        match List.assoc_opt name sizes with
        | Some s -> s
        | None ->
          if kind = Floorplan.Array_block then array_size
          else begin
            err ctx ~code:"V0205" ~span stmt.Ast.line
              "no size given for block %S" name;
            array_size
          end
      in
      { Floorplan.name; kind; size }
    in
    Some (List.map2 block stmt.Ast.positional stmt.Ast.positional_spans)

let elaborate ast =
  let ctx = { diags = [] } in
  let result =
    try
      (* Device. *)
      let part = stmt_with ast "Device" "Part" in
      if part = None then
        err ctx ~code:"V0203" 1
          "missing Device section with a Part statement";
      let node =
        match part with
        | None -> Node.N65
        | Some part ->
          (match Ast.arg part "node" with
           | None ->
             err_kw ctx ~code:"V0205" part "Part needs node=<feature size>";
             Node.N65
           | Some _ ->
             (match quantity ctx part "node" Q.Length with
              | Some f -> Node.of_nm (f *. 1e9)
              | None -> Node.N65))
      in
      let name =
        Option.value ~default:"unnamed"
          (Option.bind part (fun p -> Ast.arg p "name"))
      in
      let g = Roadmap.generation node in
      (* Specification. *)
      let io = stmt_with ast "Specification" "IO" in
      let control = stmt_with ast "Specification" "Control" in
      let clock = stmt_with ast "Specification" "Clock" in
      let density = stmt_with ast "Specification" "Density" in
      let banks_stmt = stmt_with ast "Specification" "Banks" in
      let burst = stmt_with ast "Specification" "Burst" in
      let timing = stmt_with ast "Specification" "Timing" in
      let interface = stmt_with ast "Specification" "Interface" in
      let opt stmt key dim = Option.bind stmt (fun s -> quantity ctx s key dim) in
      let opt_int stmt key = Option.bind stmt (fun s -> integer ctx s key) in
      let io_width =
        Option.value ~default:g.Roadmap.io_width (opt_int io "width")
      in
      let datarate =
        Option.value ~default:g.Roadmap.datarate (opt io "datarate" Q.Datarate)
      in
      let control_clock =
        match opt control "frequency" Q.Frequency with
        | Some f -> f
        | None ->
          (match Node.standard node with
           | Node.Sdr -> datarate
           | _ -> datarate /. 2.0)
      in
      let density_bits =
        match opt density "mbits" Q.Scalar with
        | Some m when m <= 0.0 ->
          (match density with
           | Some s ->
             err_arg ctx ~code:"V0204" s "mbits"
               "Density mbits must be positive, got %g" m
           | None -> err ctx ~code:"V0204" 1 "Density mbits must be positive");
          g.Roadmap.density_bits
        | Some m -> m *. (2.0 ** 20.0)
        | None -> g.Roadmap.density_bits
      in
      let banks =
        Option.value ~default:g.Roadmap.banks (opt_int banks_stmt "number")
      in
      let prefetch =
        Option.value ~default:g.Roadmap.prefetch (opt_int burst "prefetch")
      in
      let burst_length =
        Option.value ~default:g.Roadmap.burst_length (opt_int burst "length")
      in
      let trc = Option.value ~default:g.Roadmap.trc (opt timing "trc" Q.Time) in
      let trcd =
        Option.value ~default:g.Roadmap.trcd (opt timing "trcd" Q.Time)
      in
      let trp = Option.value ~default:g.Roadmap.trp (opt timing "trp" Q.Time) in
      (* Cell array geometry. *)
      let cell_stmts =
        List.filter
          (fun (s : Ast.stmt) -> lower s.Ast.keyword = "cellarray")
          (stmts_of ast "FloorplanPhysical")
      in
      let cell key dim =
        List.fold_left
          (fun acc s ->
            match quantity ctx s key dim with Some v -> Some v | None -> acc)
          None cell_stmts
      in
      let cell_int key = Option.map int_of_float (cell key Q.Scalar) in
      let f = Node.feature_size node in
      let page_bits =
        Option.value ~default:g.Roadmap.page_bits (cell_int "page")
      in
      let style =
        match
          Option.map (fun (s, v) -> (s, lower v))
            (List.fold_left
               (fun acc (s : Ast.stmt) ->
                 match Ast.arg s "BLtype" with
                 | Some v -> Some (s, v)
                 | None -> acc)
               None cell_stmts)
        with
        | Some (_, "open") -> Array_geometry.Open
        | Some (_, "folded") -> Array_geometry.Folded
        | Some (s, other) ->
          err_arg ctx ~code:"V0204" s "BLtype"
            "bad BLtype %S (open or folded)" other;
          if g.Roadmap.cell_factor >= 8.0 then Array_geometry.Folded
          else Array_geometry.Open
        | None ->
          if g.Roadmap.cell_factor >= 8.0 then Array_geometry.Folded
          else Array_geometry.Open
      in
      let geometry =
        Array_geometry.derive ~style
          ~csl_blocks:(Option.value ~default:1 (cell_int "CSLblocks"))
          ~bank_bits:(density_bits /. float_of_int banks)
          ~page_bits
          ~bits_per_bitline:
            (Option.value ~default:g.Roadmap.bits_per_bitline
               (cell_int "BitsPerBL"))
          ~bits_per_lwl:
            (Option.value ~default:g.Roadmap.bits_per_lwl
               (cell_int "BitsPerLWL"))
          ~wl_pitch:
            (Option.value
               ~default:(g.Roadmap.cell_factor /. 2.0 *. f)
               (cell "WLpitch" Q.Length))
          ~bl_pitch:
            (Option.value ~default:(2.0 *. f) (cell "BLpitch" Q.Length))
          ~sa_stripe:
            (Option.value ~default:(Scaling.sa_stripe_width node)
               (cell "SAstripe" Q.Length))
          ~lwd_stripe:
            (Option.value ~default:(Scaling.lwd_stripe_width node)
               (cell "LWDstripe" Q.Length))
          ()
      in
      (* Floorplan: explicit axes or the commodity default. *)
      let stripe_scale = Scaling.factor Scaling.F_stripe_width node in
      let commodity () =
        Floorplan.commodity ~geometry ~banks
          ~row_logic:(200e-6 *. stripe_scale)
          ~column_logic:(200e-6 *. stripe_scale)
          ~center_stripe:
            (530e-6 *. stripe_scale
            *. sqrt (Config.standard_complexity (Node.standard node)))
      in
      let floorplan =
        match
          ( axis_blocks ctx ast ~axis:`H ~geometry,
            axis_blocks ctx ast ~axis:`V ~geometry )
        with
        | Some h, Some v ->
          Floorplan.v ~horizontal:h ~vertical:v ~geometry ~banks
        | None, None -> commodity ()
        | _ ->
          err ctx ~code:"V0203" 1
            "floorplan needs both Horizontal and Vertical block lists";
          commodity ()
      in
      (* Spec record. *)
      let log2i n =
        let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
        go 0 n
      in
      let rows_per_bank = density_bits /. float_of_int (banks * page_bits) in
      let spec =
        Spec.v
          ?clock_wires:(opt_int clock "number")
          ?misc_control:(opt_int control "misc")
          ~io_width ~datarate ~control_clock
          ~bank_bits:
            (Option.value ~default:(log2i banks) (opt_int control "bankadd"))
          ~row_bits:
            (Option.value
               ~default:(log2i (int_of_float rows_per_bank))
               (opt_int control "rowadd"))
          ~col_bits:
            (Option.value
               ~default:(log2i (page_bits / io_width))
               (opt_int control "coladd"))
          ~prefetch ~burst_length ~banks ~density_bits ~trc ~trcd ~trp ()
      in
      (* Technology and voltages. *)
      let tech = apply_technology ctx ast (Scaling.params_at node) in
      let supply = stmt_with ast "Voltages" "Supply" in
      let eff = stmt_with ast "Voltages" "Efficiency" in
      let const = stmt_with ast "Voltages" "Constant" in
      let domains =
        Domains.v
          ?eff_int:(opt eff "int" Q.Fraction)
          ?eff_bl:(opt eff "bl" Q.Fraction)
          ?eff_pp:(opt eff "pp" Q.Fraction)
          ?i_constant:(opt const "current" Q.Current)
          ~vdd:
            (Option.value ~default:g.Roadmap.vdd (opt supply "vdd" Q.Voltage))
          ~vint:
            (Option.value ~default:g.Roadmap.vint
               (opt supply "vint" Q.Voltage))
          ~vbl:(Option.value ~default:g.Roadmap.vbl (opt supply "vbl" Q.Voltage))
          ~vpp:(Option.value ~default:g.Roadmap.vpp (opt supply "vpp" Q.Voltage))
          ()
      in
      (* Buses and logic blocks. *)
      let default_buses = Config.default_buses ~floorplan ~node ~spec in
      let buses =
        buses_of_signaling ctx ast floorplan ~spec ~default:default_buses
      in
      let logic =
        logic_of_section ctx ast
          ~default:(Config.default_logic_blocks ~node ~spec)
      in
      let data_toggle =
        Option.value ~default:0.5 (opt interface "toggle" Q.Fraction)
      in
      let io_predriver_cap =
        Option.value
          ~default:(5.0e-12 *. Scaling.factor Scaling.F_wire_cap node)
          (opt interface "predriver" Q.Capacitance)
      in
      let io_receiver_cap =
        Option.value
          ~default:(2.5e-12 *. Scaling.factor Scaling.F_wire_cap node)
          (opt interface "receiver" Q.Capacitance)
      in
      let config =
        {
          Config.name;
          node;
          spec;
          domains;
          tech;
          floorplan;
          buses;
          logic;
          data_toggle;
          io_predriver_cap;
          io_receiver_cap;
          receiver_bias =
            Option.value
              ~default:
                (match Node.standard node with
                 | Node.Sdr | Node.Ddr -> 0.10e-3
                 | Node.Ddr2 -> 0.50e-3
                 | Node.Ddr3 -> 0.45e-3
                 | Node.Ddr4 -> 0.35e-3
                 | Node.Ddr5 -> 0.30e-3)
              (opt interface "bias" Q.Current);
          input_receivers =
            Option.value
              ~default:
                (spec.Spec.row_bits + spec.Spec.bank_bits
                + spec.Spec.misc_control + 2)
              (opt_int interface "receivers");
          activation_fraction =
            Option.value ~default:1.0 (opt interface "activation" Q.Fraction);
        }
      in
      (* Pattern: parse token by token so every bad command is
         reported at its own span. *)
      let pattern =
        match stmts_of ast "Pattern" with
        | [] -> None
        | stmt :: _ ->
          if lower stmt.Ast.keyword <> "pattern" then begin
            err_kw ctx ~code:"V0204" stmt "expected a Pattern loop= statement";
            None
          end
          else begin
            let slots =
              List.concat
                (List.map2
                   (fun tok span ->
                     match Pattern.parse ~name:"slot" tok with
                     | Ok p -> p.Pattern.slots
                     | Error msg ->
                       err ctx ~code:"V0206" ~span stmt.Ast.line "%s" msg;
                       [])
                   stmt.Ast.positional stmt.Ast.positional_spans)
            in
            match slots with
            | [] ->
              if stmt.Ast.positional = [] then
                err_kw ctx ~code:"V0206" stmt "empty pattern loop";
              None
            | slots -> Some (Pattern.v ~name:"described pattern" slots)
          end
      in
      Some { config; pattern }
    with Invalid_argument msg ->
      err ctx ~code:"V0200" ~span:Span.none 0 "%s" msg;
      None
  in
  (result, List.rev ctx.diags)

(* ----- fail-fast compatibility ------------------------------------- *)

let to_result (cfg, diags) =
  match List.find_opt Diagnostic.is_error diags with
  | Some d ->
    Error
      {
        Parser.line = d.Diagnostic.span.Span.line;
        message = d.Diagnostic.message;
        code = d.Diagnostic.code;
        span = d.Diagnostic.span;
      }
  | None ->
    (match cfg with
     | Some t -> Ok t
     | None ->
       Error
         {
           Parser.line = 0;
           message = "description cannot be elaborated";
           code = "V0200";
           span = Span.none;
         })

let load_string source =
  match Parser.parse source with
  | Error _ as e -> e
  | Ok ast -> to_result (elaborate ast)

let load_file path =
  match Parser.parse_file path with
  | Error _ as e -> e
  | Ok ast -> to_result (elaborate ast)
