(* AST of the description language. *)

module Span = Vdram_diagnostics.Span

type stmt = {
  line : int;
  keyword : string;
  keyword_span : Span.t;
  args : (string * string) list;
  arg_spans : (string * Span.t) list;
  positional : string list;
  positional_spans : Span.t list;
}

type section = {
  section_line : int;
  section_name : string;
  section_span : Span.t;
  stmts : stmt list;
}

type t = section list

let lower = String.lowercase_ascii

let arg stmt key =
  let key = lower key in
  List.assoc_opt key (List.map (fun (k, v) -> (lower k, v)) stmt.args)

let arg_span stmt key =
  let key = lower key in
  List.assoc_opt key (List.map (fun (k, s) -> (lower k, s)) stmt.arg_spans)

let find_sections t name =
  let name = lower name in
  List.filter (fun s -> lower s.section_name = name) t

let pp_stmt ppf s =
  Format.fprintf ppf "%s" s.keyword;
  List.iter (fun p -> Format.fprintf ppf " %s" p) s.positional;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) s.args

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun sec ->
      Format.fprintf ppf "%s@," sec.section_name;
      List.iter (fun s -> Format.fprintf ppf "  %a@," pp_stmt s) sec.stmts)
    t;
  Format.fprintf ppf "@]"
