(* AST of the description language. *)

type stmt = {
  line : int;
  keyword : string;
  args : (string * string) list;
  positional : string list;
}

type section = {
  section_line : int;
  section_name : string;
  stmts : stmt list;
}

type t = section list

let lower = String.lowercase_ascii

let arg stmt key =
  let key = lower key in
  List.assoc_opt key (List.map (fun (k, v) -> (lower k, v)) stmt.args)

let find_sections t name =
  let name = lower name in
  List.filter (fun s -> lower s.section_name = name) t

let pp_stmt ppf s =
  Format.fprintf ppf "%s" s.keyword;
  List.iter (fun p -> Format.fprintf ppf " %s" p) s.positional;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) s.args

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun sec ->
      Format.fprintf ppf "%s@," sec.section_name;
      List.iter (fun s -> Format.fprintf ppf "  %a@," pp_stmt s) sec.stmts)
    t;
  Format.fprintf ppf "@]"
