(** Elaboration of a parsed description into a model configuration.

    Sections understood (all except [Device] and [Specification] are
    optional and default to the commodity roadmap at the device's
    node):

    - [Device] — [Part name=<id> node=65nm]
    - [Specification] — [IO width=16 datarate=1.6Gbps],
      [Clock number=1 frequency=800MHz], [Control frequency=800MHz
      bankadd=3 rowadd=14 coladd=10 misc=6], [Density mbits=1024],
      [Banks number=8], [Burst length=8 prefetch=8],
      [Timing trc=50ns trcd=15ns trp=15ns],
      [Interface predriver=5pF receiver=2.5pF toggle=50%]
    - [FloorplanPhysical] — [CellArray BitsPerBL=512 BitsPerLWL=512
      BLtype=open WLpitch=165nm BLpitch=110nm SAstripe=8um
      LWDstripe=3um Page=16384 CSLblocks=1], axis lists
      [Horizontal blocks = A1 R1 A2 ...] with [SizeHorizontal
      R1=200um ...] (block kind from the name's first letter:
      A = array, R = row logic, C = column logic, P = center stripe;
      array block sizes are computed)
    - [Technology] — [Set <param>=<value> ...] overriding any of the
      39 technology parameters by compact key (e.g. [cbitline=75fF])
    - [Voltages] — [Supply vdd=1.5V vint=1.4V vbl=1.2V vpp=2.8V],
      [Efficiency int=93% bl=80% pp=40%], [Constant current=5mA]
    - [FloorplanSignaling] — one statement per bus segment, keyword
      naming the bus ([WriteData], [ReadData], [RowAddress],
      [ColumnAddress], [BankAddress], [Command], [Clock]) with either
      [length=450um] or [start=i_j end=i_j] or [inside=i_j
      fraction=25% dir=h], optional [NchW=9.6um PchW=19.2um]
      buffer, [mux=1:8], [toggle=50%], [wires=16]
    - [LogicBlocks] — [Block name=<id> gates=18000 toggle=15%
      trigger=always|act,pre|rd,wrt ...]
    - [Pattern] — [Pattern loop= act nop wrt nop rd nop pre nop] *)

type t = {
  config : Vdram_core.Config.t;
  pattern : Vdram_core.Pattern.t option;
}

val elaborate : Ast.t -> t option * Vdram_diagnostics.Diagnostic.t list
(** Error-accumulating elaboration: every problem found is reported
    as a spanned diagnostic (falling back to the roadmap default or
    skipping the offending segment/block), so one run lists them all.
    The configuration is [Some] whenever elaboration could complete
    structurally — it is only trustworthy when no error diagnostic
    was emitted — and [None] when construction itself failed. *)

val to_result : t option * Vdram_diagnostics.Diagnostic.t list ->
  (t, Parser.error) result
(** Fail-fast view of an accumulated elaboration: [Ok] when no error
    diagnostic was emitted, otherwise [Error] carrying the first
    one. *)

val technology_keys : string list
(** The compact keys accepted in the [Technology] section, in
    {!Vdram_tech.Params.fields} order, plus [bitspercsl]. *)

val technology_dims : Vdram_units.Quantity.dim list
(** Expected dimensions of the float-valued technology keys, aligned
    with the first 38 entries of {!technology_keys}. *)

val load_file : string -> (t, Parser.error) result
(** Parse and elaborate a description file. *)

val load_string : string -> (t, Parser.error) result
