(* vdram command-line interface. *)

open Cmdliner

module Node = Vdram_tech.Node
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Model = Vdram_core.Model
module Report = Vdram_core.Report
module Spec = Vdram_core.Spec

(* ----- shared arguments ------------------------------------------- *)

let node_arg =
  let parse s =
    match float_of_string_opt (Filename.remove_extension s) with
    | _ ->
      (match Vdram_units.Quantity.parse_dim Vdram_units.Quantity.Length s with
       | Ok metres -> Ok (Node.of_nm (metres *. 1e9))
       | Error _ ->
         (match float_of_string_opt s with
          | Some nm -> Ok (Node.of_nm nm)
          | None -> Error (`Msg (Printf.sprintf "bad node %S" s))))
  in
  let print ppf n = Format.fprintf ppf "%s" (Node.name n) in
  Arg.conv (parse, print)

let node =
  Arg.(
    value
    & opt node_arg Node.N65
    & info [ "node" ] ~docv:"NODE"
        ~doc:"Technology node, e.g. 65nm (nearest roadmap node is used).")

let file =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"DRAM description file (.dram).")

let density_mbits =
  Arg.(
    value
    & opt (some float) None
    & info [ "density-mbits" ] ~docv:"MBITS" ~doc:"Device density in Mbit.")

let io_width =
  Arg.(
    value
    & opt (some int) None
    & info [ "io-width" ] ~docv:"N" ~doc:"DQ pins (x4/x8/x16).")

let datarate =
  Arg.(
    value
    & opt (some string) None
    & info [ "datarate" ] ~docv:"RATE" ~doc:"Per-pin data rate, e.g. 1.6Gbps.")

let pattern_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "pattern" ] ~docv:"LOOP"
        ~doc:"Command loop, e.g. 'act nop wrt nop rd nop pre nop'.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for batched evaluations (default: \
              $(b,VDRAM_JOBS), else the recommended domain count of \
              this machine).")

let timings_arg =
  Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:"Print per-stage timing, cache-hit and disk-cache \
              counters to stderr.")

let cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:"Share extraction and pattern-mix results across runs \
              through the persistent on-disk cache (see \
              $(b,--cache-dir)).  Stale or corrupt snapshots are \
              never served: they are quarantined under the cache \
              directory and recomputed.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the persistent cache even when $(b,--cache) or \
              $(b,--cache-dir) is given.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Persistent cache directory (implies $(b,--cache); \
              default $(b,VDRAM_CACHE_DIR), else _build/.vdram-cache).")

(* One term shared by every analysis command: [--jobs] plus the
   persistent-cache trio, yielding an engine factory. *)
let engine_term =
  let make jobs cache no_cache cache_dir () =
    let store =
      if no_cache || ((not cache) && cache_dir = None) then None
      else Some (Vdram_engine.Engine.store_open ?dir:cache_dir ())
    in
    Vdram_engine.Engine.create ?jobs ?store ()
  in
  Term.(const make $ jobs_arg $ cache_arg $ no_cache_arg $ cache_dir_arg)

(* ----- supervised runtime flags ------------------------------------ *)

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "keep-going"; "k" ]
        ~doc:"Isolate batch-item failures: record them (see \
              $(b,--fail-log)) and report partial results instead of \
              aborting on the first failure.  Exits 3 when any item \
              failed.")

let max_failures_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-failures" ] ~docv:"N"
        ~doc:"Tolerate at most $(docv) failed items (implies \
              $(b,--keep-going)); the batch stops once the budget is \
              exceeded.")

let fail_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fail-log" ] ~docv:"FILE"
        ~doc:"Write the machine-readable failure report (JSON, schema \
              version 1: one record per failed item with batch, \
              index, stage, input fingerprint and message) to \
              $(docv).  Implies supervision.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Per-item wall-clock budget: an item exceeding it is \
              recorded as a deadline failure.  Implies supervision.")

let supervise_flags =
  Term.(
    const (fun keep_going max_failures fail_log deadline ->
        (keep_going, max_failures, fail_log, deadline))
    $ keep_going_arg $ max_failures_arg $ fail_log_arg $ deadline_arg)

(* A supervisor is built when any supervision flag is given or a
   VDRAM_FAULTS plan is present; plain runs keep the unsupervised
   engine path bit for bit. *)
let build_supervision (keep_going, max_failures, fail_log, deadline) =
  match Vdram_engine.Faults.of_env () with
  | Error msg -> Error (Printf.sprintf "VDRAM_FAULTS: %s" msg)
  | Ok env_plan ->
    let wanted =
      keep_going || max_failures <> None || fail_log <> None
      || deadline <> None || env_plan <> None
    in
    if not wanted then Ok (None, fail_log)
    else
      let policy =
        {
          Vdram_engine.Supervise.keep_going =
            keep_going || max_failures <> None;
          max_failures;
          deadline;
        }
      in
      Ok (Some (Vdram_engine.Supervise.create ~policy ()), fail_log)

let report_timings timings engine supervisor =
  if timings then begin
    Format.eprintf "engine (%d jobs):@.%a@."
      (Vdram_engine.Engine.jobs engine)
      Vdram_engine.Engine.pp_stats
      (Vdram_engine.Engine.stats engine);
    (match Vdram_engine.Engine.store engine with
     | None -> ()
     | Some st ->
       let ext, mix = Vdram_engine.Engine.preloaded engine in
       Format.eprintf "disk cache %s: preloaded %d extraction / %d mix@."
         (Vdram_engine.Store.dir st) ext mix;
       Format.eprintf "disk cache i/o: %a@." Vdram_engine.Store.pp_stats
         (Vdram_engine.Store.stats st));
    match supervisor with
    | None -> ()
    | Some sup ->
      Format.eprintf "supervised: %a@." Vdram_engine.Supervise.pp_counters
        (Vdram_engine.Supervise.counters sup)
  end

(* End-of-command bookkeeping: write the caches back to the store (a
   no-op without one), persist the failure report, then report
   counters.  Returns the failure count so callers can pick the exit
   code. *)
let finalize ~command timings engine supervisor fail_log =
  Vdram_engine.Engine.flush_store engine;
  (match (supervisor, fail_log) with
   | Some sup, Some path ->
     Out_channel.with_open_text path (fun oc ->
         Out_channel.output_string oc
           (Vdram_engine.Supervise.report_to_json ~command sup))
   | _ -> ());
  report_timings timings engine supervisor;
  match supervisor with
  | None -> 0
  | Some sup -> (Vdram_engine.Supervise.counters sup).Vdram_engine.Supervise.failures

let fail fmt = Printf.ksprintf (fun m -> `Error (false, m)) fmt

(* Exit-code contract of the supervised analysis commands: 0 clean,
   3 partial results (failures were recorded under --keep-going);
   aborts and usage errors go through cmdliner's own codes. *)
let exit_partial = 3

(* SIGINT/SIGTERM on a batched command still leaves useful state
   behind: the disk store is flushed, the failure report is written,
   and the partial supervision counters are printed — the same drain
   discipline [vdram serve] applies, through the shared Signals
   module. *)
let install_interrupt ~command engine supervisor fail_log =
  Vdram_serve.Signals.install (fun signum ->
      Format.eprintf "@.%s: interrupted; flushing partial state@." command;
      Vdram_engine.Engine.flush_store engine;
      (match (supervisor, fail_log) with
       | Some sup, Some path ->
         (try
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc
                  (Vdram_engine.Supervise.report_to_json ~command sup))
          with Sys_error _ -> ())
       | _ -> ());
      (match supervisor with
       | None -> ()
       | Some sup ->
         Format.eprintf "supervised: %a@." Vdram_engine.Supervise.pp_counters
           (Vdram_engine.Supervise.counters sup));
      exit (128 + Vdram_serve.Signals.os_number signum))

let run_supervised ~command ~timings ~engine ~supervisor ~fail_log body =
  let module S = Vdram_engine.Supervise in
  install_interrupt ~command engine supervisor fail_log;
  match body () with
  | () ->
    let failures = finalize ~command timings engine supervisor fail_log in
    if failures = 0 then `Ok ()
    else begin
      Format.eprintf "%s: %d item(s) failed; results are partial%s@." command
        failures
        (match fail_log with
         | Some path -> Printf.sprintf " (failure report: %s)" path
         | None -> "");
      exit exit_partial
    end
  | exception S.Aborted { failures; tolerated } ->
    ignore (finalize ~command timings engine supervisor fail_log : int);
    fail "%s: aborted after %d failure(s) (max tolerated %d)" command failures
      tolerated
  | exception e when Option.is_some supervisor ->
    (* Even a run that dies outside the batch leaves its failure
       report behind. *)
    ignore (finalize ~command timings engine supervisor fail_log : int);
    fail "%s: %s" command (Printexc.to_string e)

let load_config ?file ?density_mbits ?io_width ?datarate ~node () =
  match file with
  | Some path ->
    (match Vdram_dsl.Elaborate.load_file path with
     | Ok { Vdram_dsl.Elaborate.config; pattern } -> Ok (config, pattern)
     | Error e ->
       Error (Format.asprintf "%s: %a" path Vdram_dsl.Parser.pp_error e))
  | None ->
    let datarate =
      match datarate with
      | None -> None
      | Some s ->
        (match
           Vdram_units.Quantity.parse_dim Vdram_units.Quantity.Datarate s
         with
         | Ok v -> Some v
         | Error _ -> None)
    in
    let density_bits =
      Option.map (fun m -> m *. (2.0 ** 20.0)) density_mbits
    in
    Ok
      ( Config.commodity ?density_bits ?io_width ?datarate ~node (),
        None )

let resolve_pattern config stored arg =
  match arg with
  | Some loop ->
    (match Pattern.parse ~name:"cli pattern" loop with
     | Ok p -> Ok p
     | Error e -> Error e)
  | None ->
    Ok
      (match stored with
       | Some p -> p
       | None -> Pattern.idd7_mixed config.Config.spec)

(* ----- power ------------------------------------------------------- *)

let power_cmd =
  let run file node density_mbits io_width datarate pattern =
    match load_config ?file ?density_mbits ?io_width ?datarate ~node () with
    | Error e -> fail "%s" e
    | Ok (config, stored) ->
      (match resolve_pattern config stored pattern with
       | Error e -> fail "%s" e
       | Ok p ->
         (* Shared with [vdram serve]: same renderer, so a daemon
            response is byte-equal to this stdout. *)
         Vdram_serve.Render.power ~eval:Model.pattern_power
           Format.std_formatter config p;
         `Ok ())
  in
  let doc = "Compute power and currents of a device." in
  Cmd.v (Cmd.info "power" ~doc)
    Term.(
      ret
        (const run $ file $ node $ density_mbits $ io_width $ datarate
       $ pattern_arg))

(* ----- verify ------------------------------------------------------ *)

let verify_cmd =
  let family =
    Arg.(
      value
      & opt (enum [ ("ddr2", `Ddr2); ("ddr3", `Ddr3) ]) `Ddr3
      & info [ "family" ] ~doc:"Datasheet family: ddr2 (Fig 8) or ddr3 (Fig 9).")
  in
  let run family =
    let rows =
      match family with
      | `Ddr2 -> Vdram_datasheets.Compare.fig8 ()
      | `Ddr3 -> Vdram_datasheets.Compare.fig9 ()
    in
    List.iter
      (fun r -> Format.printf "%a@." Vdram_datasheets.Compare.pp_row r)
      rows;
    `Ok ()
  in
  let doc = "Compare model currents against vendor datasheets (Figs 8/9)." in
  Cmd.v (Cmd.info "verify" ~doc) Term.(ret (const run $ family))

(* ----- sensitivity ------------------------------------------------- *)

let sensitivity_cmd =
  let top =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"N" ~doc:"Entries to print.")
  in
  let run file node top pattern mk_engine timings sup_flags =
    match load_config ?file ~node () with
    | Error e -> fail "%s" e
    | Ok (config, stored) ->
      (match resolve_pattern config stored pattern with
       | Error e -> fail "%s" e
       | Ok p ->
         (match build_supervision sup_flags with
          | Error e -> fail "%s" e
          | Ok (supervisor, fail_log) ->
            let engine = mk_engine () in
            run_supervised ~command:"sensitivity" ~timings ~engine ~supervisor
              ~fail_log (fun () ->
                let s =
                  Vdram_analysis.Sensitivity.run ~engine ?supervisor
                    ~pattern:p config
                in
                Vdram_serve.Render.sensitivity ~top Format.std_formatter s)))
  in
  let doc = "Rank parameters by power impact (Fig 10 / Table III)." in
  Cmd.v (Cmd.info "sensitivity" ~doc)
    Term.(
      ret (const run $ file $ node $ top $ pattern_arg $ engine_term
         $ timings_arg $ supervise_flags))

(* ----- trends ------------------------------------------------------ *)

let trends_cmd =
  let run mk_engine timings sup_flags =
    match build_supervision sup_flags with
    | Error e -> fail "%s" e
    | Ok (supervisor, fail_log) ->
      let engine = mk_engine () in
      run_supervised ~command:"trends" ~timings ~engine ~supervisor ~fail_log
        (fun () ->
          List.iter
            (fun p -> Format.printf "%a@." Vdram_analysis.Trends.pp_point p)
            (Vdram_analysis.Trends.all ~engine ?supervisor ()))
  in
  let doc = "DRAM roadmap trends (Figs 11-13)." in
  Cmd.v (Cmd.info "trends" ~doc)
    Term.(ret (const run $ engine_term $ timings_arg $ supervise_flags))

(* ----- schemes ----------------------------------------------------- *)

let schemes_cmd =
  let run file node mk_engine timings sup_flags =
    match load_config ?file ~node () with
    | Error e -> fail "%s" e
    | Ok (config, _) ->
      (match build_supervision sup_flags with
       | Error e -> fail "%s" e
       | Ok (supervisor, fail_log) ->
         let engine = mk_engine () in
         run_supervised ~command:"schemes" ~timings ~engine ~supervisor
           ~fail_log (fun () ->
             let results =
               Vdram_schemes.Evaluate.run_all ~engine ?supervisor config
             in
             Format.printf "baseline: %s@.@.%a@." config.Config.name
               Vdram_schemes.Evaluate.pp_table results))
  in
  let doc = "Evaluate the Section V power-reduction schemes." in
  Cmd.v (Cmd.info "schemes" ~doc)
    Term.(
      ret (const run $ file $ node $ engine_term $ timings_arg
         $ supervise_flags))

(* ----- simulate ---------------------------------------------------- *)

let simulate_cmd =
  let workload =
    Arg.(
      value
      & opt
          (enum
             [ ("uniform", `Uniform); ("stream", `Stream);
               ("hotspot", `Hotspot) ])
          `Uniform
      & info [ "workload" ] ~doc:"Synthetic workload shape.")
  in
  let requests =
    Arg.(
      value & opt int 10000
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to simulate.")
  in
  let gap =
    Arg.(
      value & opt int 8
      & info [ "gap" ] ~docv:"CYCLES" ~doc:"Cycles between arrivals.")
  in
  let power_down =
    Arg.(
      value & opt (some int) None
      & info [ "power-down" ] ~docv:"CYCLES"
          ~doc:"Enter precharge power-down beyond this idle threshold.")
  in
  let closed_page =
    Arg.(value & flag & info [ "closed-page" ] ~doc:"Close rows eagerly.")
  in
  let run file node workload requests gap power_down closed_page =
    match load_config ?file ~node () with
    | Error e -> fail "%s" e
    | Ok (config, _) ->
      let spec = config.Config.spec in
      let banks = spec.Spec.banks in
      let rows = 1024 and columns = 128 in
      let trace =
        match workload with
        | `Uniform ->
          Vdram_sim.Trace.uniform ~rng:(Vdram_sim.Trace.rng 42)
            ~requests ~arrival_gap:gap ~banks ~rows ~columns
            ~write_fraction:0.3
        | `Stream ->
          Vdram_sim.Trace.streaming ~requests ~arrival_gap:gap ~banks ~rows
            ~columns ~write_fraction:0.3
        | `Hotspot ->
          Vdram_sim.Trace.hotspot ~rng:(Vdram_sim.Trace.rng 42)
            ~requests ~arrival_gap:gap ~banks ~rows ~columns
            ~write_fraction:0.3 ~hot_rows:16 ~hot_fraction:0.8
      in
      let page_policy =
        if closed_page then Vdram_sim.Controller.Closed_page
        else Vdram_sim.Controller.Open_page
      in
      let power_down =
        match power_down with
        | Some n -> Vdram_sim.Controller.Precharge_power_down n
        | None -> Vdram_sim.Controller.No_power_down
      in
      let run = Vdram_sim.Sim.simulate ~page_policy ~power_down config trace in
      Format.printf "%a@." Vdram_sim.Sim.pp_run run;
      `Ok ()
  in
  let doc = "Run a workload through the controller + power model." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      ret
        (const run $ file $ node $ workload $ requests $ gap $ power_down
       $ closed_page))

(* ----- validate ------------------------------------------------------ *)

let validate_cmd =
  let run file node =
    match load_config ?file ~node () with
    | Error e -> fail "%s" e
    | Ok (config, _) ->
      (match Vdram_core.Validate.check config with
       | [] ->
         Format.printf "%s: consistent@." config.Config.name;
         `Ok ()
       | findings ->
         List.iter
           (fun f -> Format.printf "%a@." Vdram_core.Validate.pp_finding f)
           findings;
         if Vdram_core.Validate.is_clean config then `Ok ()
         else fail "%s has errors" config.Config.name)
  in
  let doc = "Check a description for semantic consistency." in
  Cmd.v (Cmd.info "validate" ~doc) Term.(ret (const run $ file $ node))

(* ----- lint --------------------------------------------------------- *)

let lint_cmd =
  let module Lint = Vdram_lint.Lint in
  let module Code = Vdram_diagnostics.Code in
  let module Suggest = Vdram_diagnostics.Suggest in
  let files =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"DRAM description files (.dram); $(b,-) reads standard \
                input.")
  in
  let explain =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"CODE"
          ~doc:"Print the documentation-inventory entry for one \
                diagnostic code (severity, title, band, rationale, \
                example), e.g. $(b,--explain V1002), and exit.  No \
                files are linted.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
          `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text) (compiler-style, with source \
                excerpts), $(b,json) or $(b,sarif) (SARIF 2.1.0).")
  in
  let deny_warnings =
    Arg.(
      value & flag
      & info [ "deny-warnings" ]
          ~doc:"Exit non-zero when warnings remain (after $(b,--allow)).")
  in
  let allow =
    Arg.(
      value
      & opt_all string []
      & info [ "allow" ] ~docv:"CODE"
          ~doc:"Suppress a warning code, e.g. $(b,--allow V0304). \
                Repeatable.  Errors cannot be suppressed.")
  in
  let fix =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:"Apply the structured fix-its to the files in place \
                (non-overlapping edits only) and lint the result.")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"With $(b,--fix): print a unified diff of the edits to \
                standard output instead of rewriting the files.")
  in
  let fix_only =
    Arg.(
      value
      & opt (some string) None
      & info [ "fix-only" ] ~docv:"CODE"
          ~doc:"Like $(b,--fix), but apply only the fix-its attached \
                to one diagnostic code, e.g. $(b,--fix-only V0101), \
                leaving every other edit alone.  Composes with \
                $(b,--dry-run).")
  in
  let run files explain format deny allow fix dry_run only =
    let fixing = fix || only <> None in
    match explain with
    | Some code ->
      (match Code.find code with
       | Some i ->
         Format.printf "%a@." Code.explain i;
         `Ok ()
       | None ->
         let hint =
           match
             Suggest.nearest
               ~candidates:(List.map (fun i -> i.Code.code) Code.all)
               code
           with
           | Some near -> Printf.sprintf " (did you mean %s?)" near
           | None -> ""
         in
         fail "unknown lint code %S%s (doc/DSL.md lists the inventory)"
           code hint)
    | None ->
    match
      List.find_opt (fun c -> not (Code.is_known c))
        (allow @ Option.to_list only)
    with
    | Some c ->
      fail "unknown lint code %S (doc/DSL.md lists the inventory)" c
    | None ->
      if files = [] then
        fail "no FILE given (pass description files, or --explain CODE)"
      else if dry_run && not fixing then
        fail "--dry-run only makes sense with --fix or --fix-only"
      else if fixing && (not dry_run) && List.mem "-" files then
        fail "--fix cannot rewrite standard input (try --dry-run)"
      else begin
        let lint_one f =
          if f = "-" then Lint.run (In_channel.input_all In_channel.stdin)
          else Lint.run_file f
        in
        let reports =
          List.map (fun f -> (f, Lint.suppress ~codes:allow (lint_one f)))
            files
        in
        let reports =
          if not fixing then List.map snd reports
          else if dry_run then
            List.map
              (fun (f, r) ->
                (match Lint.preview_fixes ?only r with
                 | None -> ()
                 | Some (diff, applied) ->
                   Printf.eprintf "%s: %d fix(es) available (dry run)\n%!"
                     f applied;
                   print_string diff);
                r)
              reports
          else
            List.map
              (fun (f, r) ->
                let fixed, applied = Lint.apply_fixes ?only r in
                if applied = 0 then r
                else begin
                  Out_channel.with_open_text f (fun oc ->
                      Out_channel.output_string oc fixed);
                  Printf.eprintf "%s: applied %d fix(es)\n%!" f applied;
                  Lint.suppress ~codes:allow (Lint.run ~file:f fixed)
                end)
              reports
        in
        (match format with
         | `Sarif -> print_string (Lint.to_sarif reports)
         | `Json ->
           let total count =
             List.fold_left (fun a r -> a + count r) 0 reports
           in
           Printf.printf
             "{\"version\":1,\"errors\":%d,\"warnings\":%d,\"files\":[%s]}\n"
             (total Lint.errors) (total Lint.warnings)
             (String.concat "," (List.map Lint.to_json reports))
         | `Text ->
           List.iter
             (fun (r : Lint.report) ->
               let name = Option.value ~default:"<stdin>" r.Lint.file in
               if r.Lint.diagnostics = [] then
                 Format.printf "%s: clean@." name
               else begin
                 Format.printf "%a" Lint.pp_text r;
                 Format.printf "%s: %d error(s), %d warning(s)@." name
                   (Lint.errors r) (Lint.warnings r)
               end)
             reports);
        (* Exit-code contract: 0 clean, 1 warnings denied, 2 errors. *)
        match Lint.exit_code ~deny_warnings:deny reports with
        | 0 -> `Ok ()
        | n -> exit n
      end
  in
  let doc =
    "Statically analyse descriptions: syntax, dimensional analysis, \
     physical consistency, timing, finiteness, floorplan coordinates \
     and bank-aware pattern legality.  $(b,--explain CODE) prints the \
     inventory entry for one diagnostic code instead.  Exits 0 when \
     clean, 1 when warnings remain under $(b,--deny-warnings), 2 on \
     errors."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      ret
        (const run $ files $ explain $ format $ deny_warnings $ allow $ fix
       $ dry_run $ fix_only))

(* ----- check -------------------------------------------------------- *)

let check_cmd =
  let module Lint = Vdram_lint.Lint in
  let module Check = Vdram_lint.Check in
  let module Code = Vdram_diagnostics.Code in
  let module Lenses = Vdram_analysis.Lenses in
  let module Abox = Vdram_absint.Abox in
  let module Bounds = Vdram_absint.Bounds in
  let module Monotone = Vdram_absint.Monotone in
  let module Certificate = Vdram_absint.Certificate in
  let module I = Vdram_units.Interval in
  let files =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"DRAM description files (.dram); $(b,-) reads standard \
                input.")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:"Emit the machine-readable certificate JSON (bounds, \
                monotonicity directions, sweep legality, sampling \
                cross-check) to standard output, one object per file; \
                findings move to standard error unless $(b,--out) \
                redirects the certificate.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"With $(b,--certify): write the certificate JSON here \
                instead of standard output.")
  in
  let lens_specs =
    Arg.(
      value
      & opt_all string []
      & info [ "lens" ] ~docv:"NAME[=LO:HI]"
          ~doc:"Certify this lens axis over the scale-factor range \
                [LO, HI] (bare NAME uses the lens group's default \
                range).  Repeatable; replaces the default voltage + \
                interface axis set.")
  in
  let all_lenses =
    Arg.(
      value & flag
      & info [ "all-lenses" ]
          ~doc:"Certify every lens of the Figure 10 inventory over its \
                default range instead of the voltage + interface set.")
  in
  let splits =
    Arg.(
      value & opt int 4
      & info [ "splits" ] ~docv:"N"
          ~doc:"Branch-and-bound bisection depth behind the bounds (up \
                to 2^N leaf evaluations).")
  in
  let cells =
    Arg.(
      value & opt int 32
      & info [ "cells" ] ~docv:"N"
          ~doc:"Deepest partition tried per monotonicity certificate.")
  in
  let samples =
    Arg.(
      value & opt int 0
      & info [ "samples" ] ~docv:"N"
          ~doc:"Draw N concrete random configurations from the box and \
                assert them inside the certified bounds; the result is \
                recorded in the certificate.")
  in
  let seed =
    Arg.(
      value & opt int 0x5eed
      & info [ "seed" ] ~docv:"N" ~doc:"Seed for the sampling stream.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
          `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format for the findings: $(b,text), $(b,json) or \
                $(b,sarif) (SARIF 2.1.0).")
  in
  let deny_warnings =
    Arg.(
      value & flag
      & info [ "deny-warnings" ]
          ~doc:"Exit non-zero when warnings remain (after $(b,--allow)).")
  in
  let allow =
    Arg.(
      value
      & opt_all string []
      & info [ "allow" ] ~docv:"CODE"
          ~doc:"Suppress a warning code, e.g. $(b,--allow V0902). \
                Repeatable.  Errors cannot be suppressed.")
  in
  let parse_axis spec =
    let name, range =
      match String.index_opt spec '=' with
      | None -> (spec, None)
      | Some i ->
        ( String.sub spec 0 i,
          Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
    in
    match Lenses.find (String.trim name) with
    | None -> Error (Printf.sprintf "unknown lens %S" (String.trim name))
    | Some lens ->
      (match range with
       | None -> Ok (Abox.default_axis lens)
       | Some r ->
         (match String.split_on_char ':' r with
          | [ lo; hi ] ->
            (match (float_of_string_opt lo, float_of_string_opt hi) with
             | Some lo, Some hi when lo > 0.0 && lo <= hi ->
               Ok (Abox.axis lens ~lo ~hi)
             | _ ->
               Error
                 (Printf.sprintf "bad range %S (want 0 < LO <= HI)" r))
          | _ -> Error (Printf.sprintf "bad range %S (want LO:HI)" r)))
  in
  let pp_interval ppf (i : I.t) =
    Format.fprintf ppf "[%.4g, %.4g]" i.I.lo i.I.hi
  in
  let summary ppf (c : Certificate.t) =
    let b = c.Certificate.bounds in
    Format.fprintf ppf "  certified over %d axes, %d leaf boxes@."
      (Abox.dim c.Certificate.box) b.Bounds.pieces;
    Format.fprintf ppf "  power       %a W@." pp_interval b.Bounds.power;
    Format.fprintf ppf "  current     %a A@." pp_interval b.Bounds.current;
    (match b.Bounds.energy_per_bit with
     | Some e ->
       Format.fprintf ppf "  energy/bit  [%.4g, %.4g] pJ/bit@."
         (e.I.lo *. 1e12) (e.I.hi *. 1e12)
     | None -> ());
    let certified =
      List.filter
        (fun (m : Monotone.certificate) -> m.Monotone.direction <> None)
        c.Certificate.monotonicity
    in
    Format.fprintf ppf "  monotone    %d/%d axes certified"
      (List.length certified)
      (List.length c.Certificate.monotonicity);
    (match certified with
     | [] -> Format.fprintf ppf "@."
     | _ ->
       Format.fprintf ppf ": %s@."
         (String.concat ", "
            (List.map
               (fun (m : Monotone.certificate) ->
                 Printf.sprintf "%s %s" m.Monotone.lens
                   (match m.Monotone.direction with
                    | Some d -> Monotone.direction_name d
                    | None -> "?"))
               certified)));
    (match c.Certificate.sweep with
     | None -> ()
     | Some s ->
       let legal =
         List.length
           (List.filter
              (fun (e : Certificate.sweep_entry) -> e.Certificate.legal)
              s.Certificate.entries)
       in
       Format.fprintf ppf "  sweep       legal at %d/%d roadmap generations@."
         legal
         (List.length s.Certificate.entries));
    match c.Certificate.samples with
    | None -> ()
    | Some s ->
      Format.fprintf ppf "  samples     %d drawn, %s@." s.Certificate.count
        (if s.Certificate.contained then "all inside the bounds"
         else "OUTSIDE THE BOUNDS (unsound!)")
  in
  let run files certify out lens_specs all_lenses splits cells samples seed
      format deny allow =
    match List.find_opt (fun c -> not (Code.is_known c)) allow with
    | Some c ->
      fail "unknown lint code %S (doc/CHECK.md lists the inventory)" c
    | None ->
      let axes =
        if lens_specs <> [] then
          let rec collect acc = function
            | [] -> Ok (List.rev acc)
            | s :: rest ->
              (match parse_axis s with
               | Ok a -> collect (a :: acc) rest
               | Error e -> Error e)
          in
          collect [] lens_specs
        else if all_lenses then
          Ok (List.map Abox.default_axis Lenses.all)
        else Ok (Check.default_axes ())
      in
      (match axes with
       | Error e -> fail "%s" e
       | Ok axes ->
         let check_one f =
           let r =
             if f = "-" then
               Check.run ~axes ~splits ~max_cells:cells ~samples ~seed
                 (In_channel.input_all In_channel.stdin)
             else
               Check.run_file ~axes ~splits ~max_cells:cells ~samples ~seed
                 f
           in
           { r with
             Check.report = Lint.suppress ~codes:allow r.Check.report }
         in
         let results = List.map (fun f -> (f, check_one f)) files in
         let reports = List.map (fun (_, r) -> r.Check.report) results in
         (* With --certify and no --out the certificate owns stdout, so
            findings go to stderr to keep the payload machine-parseable. *)
         let ppf =
           if certify && out = None then Format.err_formatter
           else Format.std_formatter
         in
         (match format with
          | `Sarif -> Format.fprintf ppf "%s" (Lint.to_sarif reports)
          | `Json ->
            let total count =
              List.fold_left (fun a r -> a + count r) 0 reports
            in
            Format.fprintf ppf
              "{\"version\":1,\"errors\":%d,\"warnings\":%d,\"files\":[%s]}\n"
              (total Lint.errors) (total Lint.warnings)
              (String.concat "," (List.map Lint.to_json reports))
          | `Text ->
            List.iter
              (fun (f, r) ->
                (match r.Check.certificate with
                 | Some c ->
                   Format.fprintf ppf "%s:@." f;
                   summary ppf c
                 | None -> ());
                Format.fprintf ppf "%a" Lint.pp_text r.Check.report;
                let rep = r.Check.report in
                Format.fprintf ppf "%s: %d error(s), %d warning(s)@." f
                  (Lint.errors rep) (Lint.warnings rep))
              results);
         Format.pp_print_flush ppf ();
         if certify then begin
           let jsons =
             List.filter_map
               (fun (_, r) ->
                 Option.map Certificate.to_json r.Check.certificate)
               results
           in
           let payload = String.concat "\n" jsons ^ "\n" in
           match out with
           | Some path ->
             Out_channel.with_open_text path (fun oc ->
                 Out_channel.output_string oc payload)
           | None -> print_string payload
         end;
         (match Lint.exit_code ~deny_warnings:deny reports with
          | 0 ->
            if List.exists (fun (_, r) -> r.Check.certificate = None) results
            then exit 2
            else `Ok ()
          | n -> exit n))
  in
  let doc =
    "Abstract interpretation over a configuration box: guaranteed \
     power/current/energy-per-bit bounds across the declared lens \
     scale ranges, per-lens monotonicity certificates, and \
     whole-sweep pattern legality across the fourteen roadmap \
     generations (V09xx).  $(b,--certify) emits the machine-readable \
     certificate contract consumed by search pruners."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      ret
        (const run $ files $ certify $ out $ lens_specs $ all_lenses
       $ splits $ cells $ samples $ seed $ format $ deny_warnings $ allow))

(* ----- advise ------------------------------------------------------- *)

let advise_cmd =
  let module Lint = Vdram_lint.Lint in
  let module Advise = Vdram_lint.Advise in
  let module Code = Vdram_diagnostics.Code in
  let files =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"DRAM description files (.dram); $(b,-) reads standard \
                input.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
          `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text) (dataflow summary plus \
                compiler-style findings), $(b,json) (findings with an \
                $(b,advise) member carrying the summary) or $(b,sarif) \
                (SARIF 2.1.0).")
  in
  let waste_threshold =
    Arg.(
      value
      & opt float 0.10
      & info [ "waste-threshold" ] ~docv:"FRACTION"
          ~doc:"Actual-vs-floor energy fraction above which $(b,V1004) \
                fires (default 0.10).")
  in
  let deny_warnings =
    Arg.(
      value & flag
      & info [ "deny-warnings" ]
          ~doc:"Exit non-zero when warnings remain (after $(b,--allow)).")
  in
  let allow =
    Arg.(
      value
      & opt_all string []
      & info [ "allow" ] ~docv:"CODE"
          ~doc:"Suppress a warning code, e.g. $(b,--allow V1003). \
                Repeatable.  Errors cannot be suppressed.")
  in
  let fix =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:"Apply the verified rewrite fix-its to the files in \
                place (non-overlapping edits only) and re-advise the \
                result.")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"With $(b,--fix): print a unified diff of the edits to \
                standard output instead of rewriting the files.")
  in
  let fix_only =
    Arg.(
      value
      & opt (some string) None
      & info [ "fix-only" ] ~docv:"CODE"
          ~doc:"Like $(b,--fix), but apply only the fix-its attached \
                to one diagnostic code, e.g. $(b,--fix-only V1001).  \
                Composes with $(b,--dry-run).")
  in
  let run files format waste_threshold deny allow fix dry_run only =
    let fixing = fix || only <> None in
    match
      List.find_opt (fun c -> not (Code.is_known c))
        (allow @ Option.to_list only)
    with
    | Some c ->
      fail "unknown lint code %S (doc/ADVISE.md lists the inventory)" c
    | None ->
      if dry_run && not fixing then
        fail "--dry-run only makes sense with --fix or --fix-only"
      else if fixing && (not dry_run) && List.mem "-" files then
        fail "--fix cannot rewrite standard input (try --dry-run)"
      else begin
        let advise_one f =
          let a =
            if f = "-" then
              Advise.run ~waste_threshold
                (In_channel.input_all In_channel.stdin)
            else Advise.run_file ~waste_threshold f
          in
          { a with
            Advise.report = Lint.suppress ~codes:allow a.Advise.report }
        in
        let results = List.map (fun f -> (f, advise_one f)) files in
        let results =
          if not fixing then results
          else if dry_run then
            List.map
              (fun (f, a) ->
                (match Lint.preview_fixes ?only a.Advise.report with
                 | None -> ()
                 | Some (diff, applied) ->
                   Printf.eprintf "%s: %d fix(es) available (dry run)\n%!"
                     f applied;
                   print_string diff);
                (f, a))
              results
          else
            List.map
              (fun (f, a) ->
                let fixed, applied = Lint.apply_fixes ?only a.Advise.report in
                if applied = 0 then (f, a)
                else begin
                  Out_channel.with_open_text f (fun oc ->
                      Out_channel.output_string oc fixed);
                  Printf.eprintf "%s: applied %d fix(es)\n%!" f applied;
                  let a = Advise.run ~waste_threshold ~file:f fixed in
                  ( f,
                    { a with
                      Advise.report =
                        Lint.suppress ~codes:allow a.Advise.report } )
                end)
              results
        in
        let reports = List.map (fun (_, a) -> a.Advise.report) results in
        (match format with
         | `Sarif -> print_string (Lint.to_sarif reports)
         | `Json ->
           let total count =
             List.fold_left (fun a r -> a + count r) 0 reports
           in
           Printf.printf
             "{\"version\":1,\"errors\":%d,\"warnings\":%d,\"files\":[%s]}\n"
             (total Lint.errors) (total Lint.warnings)
             (String.concat ","
                (List.map (fun (_, a) -> Advise.to_json a) results))
         | `Text ->
           List.iter
             (fun (f, (a : Advise.t)) ->
               let name =
                 Option.value ~default:"<stdin>" a.Advise.report.Lint.file
               in
               ignore f;
               (match a.Advise.summary with
                | Some s ->
                  Format.printf "%s:@.%a@." name Advise.pp_summary s
                | None -> ());
               if a.Advise.report.Lint.diagnostics = [] then
                 Format.printf "%s: no advice@." name
               else begin
                 Format.printf "%a" Lint.pp_text a.Advise.report;
                 Format.printf "%s: %d error(s), %d warning(s)@." name
                   (Lint.errors a.Advise.report)
                   (Lint.warnings a.Advise.report)
               end)
             results);
        (* Exit-code contract: 0 clean, 1 warnings denied, 2 errors. *)
        match Lint.exit_code ~deny_warnings:deny reports with
        | 0 -> `Ok ()
        | n -> exit n
      end
  in
  let doc =
    "Static dataflow analysis of the pattern loop, without a \
     simulation run: per-command slack against the binding timing \
     constraint, steady-state bus and bank utilization, row-buffer \
     locality, a power-down-eligible idle-window inventory, and the \
     loop's distance from a certified static energy floor (V10xx).  \
     Every proposed rewrite is replayed across all fourteen roadmap \
     generations and re-priced before it is offered.  Exits 0 when \
     clean, 1 when warnings remain under $(b,--deny-warnings), 2 on \
     errors."
  in
  Cmd.v (Cmd.info "advise" ~doc)
    Term.(
      ret
        (const run $ files $ format $ waste_threshold $ deny_warnings
       $ allow $ fix $ dry_run $ fix_only))

(* ----- corners ------------------------------------------------------ *)

let corners_cmd =
  let samples =
    Arg.(value & opt int 200 & info [ "samples" ] ~doc:"Monte-Carlo samples.")
  in
  let spread =
    Arg.(
      value & opt float 0.10
      & info [ "spread" ] ~doc:"Half-width of the parameter band (0.10 = +-10%).")
  in
  let run file node samples spread pattern mk_engine timings sup_flags =
    match load_config ?file ~node () with
    | Error e -> fail "%s" e
    | Ok (config, stored) ->
      (match resolve_pattern config stored pattern with
       | Error e -> fail "%s" e
       | Ok p ->
         (match build_supervision sup_flags with
          | Error e -> fail "%s" e
          | Ok (supervisor, fail_log) ->
            let engine = mk_engine () in
            run_supervised ~command:"corners" ~timings ~engine ~supervisor
              ~fail_log (fun () ->
                let d =
                  Vdram_analysis.Corners.run ~engine ?supervisor ~samples
                    ~spread ~pattern:p config
                in
                Vdram_serve.Render.corners ~config_name:config.Config.name
                  ~pattern_name:p.Pattern.name Format.std_formatter d)))
  in
  let doc = "Monte-Carlo parameter spread (the vendor-spread story)." in
  Cmd.v (Cmd.info "corners" ~doc)
    Term.(
      ret
        (const run $ file $ node $ samples $ spread $ pattern_arg
       $ engine_term $ timings_arg $ supervise_flags))

(* ----- states ------------------------------------------------------- *)

let states_cmd =
  let run file node =
    match load_config ?file ~node () with
    | Error e -> fail "%s" e
    | Ok (config, _) ->
      Format.printf "%s@." config.Config.name;
      List.iter
        (fun st ->
          Format.printf "  %-18s %10s@." (Model.state_name st)
            (Vdram_units.Si.format_eng ~unit_symbol:"W"
               (Model.state_power config st)))
        [ Model.Active_standby; Model.Precharge_standby; Model.Power_down;
          Model.Self_refresh ];
      Format.printf "  %-18s %10s@." "Idd5B (burst ref)"
        (Vdram_units.Si.format_eng ~unit_symbol:"A" (Model.idd5b config));
      Format.printf "@.peak (windowed) currents:@.";
      List.iter
        (fun p -> Format.printf "  %a@." Vdram_core.Peak.pp p)
        (Vdram_core.Peak.all config);
      Format.printf "  worst case (tFAW + burst): %6.1f mA@."
        (Vdram_core.Peak.worst_case config *. 1e3);
      `Ok ()
  in
  let doc = "Standby-state powers and the refresh current." in
  Cmd.v (Cmd.info "states" ~doc) Term.(ret (const run $ file $ node))

(* ----- ablate ------------------------------------------------------- *)

let ablate_cmd =
  let which =
    Arg.(
      value
      & opt
          (enum
             [ ("activation", `Activation); ("bitline", `Bitline);
               ("style", `Style); ("prefetch", `Prefetch);
               ("wordline", `Wordline) ])
          `Activation
      & info [ "sweep" ] ~doc:"Which design choice to sweep.")
  in
  let run node which mk_engine timings sup_flags =
    match build_supervision sup_flags with
    | Error e -> fail "%s" e
    | Ok (supervisor, fail_log) ->
      let engine = mk_engine () in
      run_supervised ~command:"ablate" ~timings ~engine ~supervisor ~fail_log
        (fun () ->
          let pts =
            match which with
            | `Activation ->
              Vdram_analysis.Ablation.page_size ~engine ?supervisor ~node
                ~pages:[ 1024; 2048; 4096; 8192; 16384 ] ()
            | `Bitline ->
              Vdram_analysis.Ablation.bitline_length ~engine ?supervisor
                ~node ~bits:[ 256; 512; 1024 ] ()
            | `Style ->
              Vdram_analysis.Ablation.bitline_style ~engine ?supervisor ~node
                ()
            | `Prefetch ->
              Vdram_analysis.Ablation.prefetch ~engine ?supervisor ~node
                ~prefetches:[ 2; 4; 8; 16; 32 ] ()
            | `Wordline ->
              Vdram_analysis.Ablation.subarray_height ~engine ?supervisor
                ~node ~bits:[ 256; 512; 1024 ] ()
          in
          Format.printf "%a@?" Vdram_analysis.Ablation.pp pts)
  in
  let doc = "Sweep one architectural design choice." in
  Cmd.v (Cmd.info "ablate" ~doc)
    Term.(
      ret (const run $ node $ which $ engine_term $ timings_arg
         $ supervise_flags))

(* ----- bench-analysis ---------------------------------------------- *)

let bench_analysis_cmd =
  let module Engine = Vdram_engine.Engine in
  let module Store = Vdram_engine.Store in
  let out =
    Arg.(
      value
      & opt string "BENCH_analysis.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output JSON path.")
  in
  let samples =
    Arg.(
      value & opt int 5000
      & info [ "samples" ] ~docv:"N"
          ~doc:"Monte-Carlo corner samples in the workload.")
  in
  let bench_cache_dir =
    Arg.(
      value
      & opt string (Filename.concat "_build" ".vdram-bench-cache")
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Directory for the disk-cache passes (cleared before \
                the cold pass, so it is honestly cold).")
  in
  let run jobs samples out cache_dir =
    let cfg = Vdram_configs.Devices.ddr3_2g in
    let parallel_jobs =
      match jobs with
      | Some j -> max 1 j
      | None -> max 2 (Vdram_engine.Pool.default_jobs ())
    in
    let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9 in
    (* Benchmark hygiene, applied identically to every pass: a roomy
       minor heap — OCaml 5 minor collections are stop-the-world, and
       with more domains than cores the cross-domain handshake, not
       the collection, dominates — and a level major-heap start. *)
    let gc = Gc.get () in
    Gc.set { gc with Gc.minor_heap_size = max gc.Gc.minor_heap_size 4_194_304 };
    (* The acceptance workload: the Fig 10 tornado, a Monte-Carlo
       corner population, per-operation energies and one full report —
       all on the 2G DDR3 55 nm device.  The last two read the
       extraction cache directly, so a warm pass exercises both
       persistent stages even when every mix lookup hits. *)
    let pat = Pattern.idd4r cfg.Config.spec in
    (* Every pass runs under a fresh supervisor with fault injection
       disabled: the bench proves supervision is free of perturbation
       (identical output) and of failures (the gate rejects a nonzero
       count when faults are off). *)
    let total_failures = ref 0 in
    let faults_enabled =
      match Vdram_engine.Faults.of_env () with
      | Ok (Some _) -> true
      | _ -> false
    in
    let workload engine =
      let supervisor =
        Vdram_engine.Supervise.create ~faults:Vdram_engine.Faults.none ()
      in
      let s = Vdram_analysis.Sensitivity.run ~engine ~supervisor cfg in
      let c = Vdram_analysis.Corners.run ~engine ~supervisor ~samples cfg in
      let ops =
        List.map
          (fun k -> Engine.op_energy engine cfg k)
          Vdram_core.Operation.all
      in
      let r = Engine.eval engine cfg pat in
      total_failures :=
        !total_failures
        + (Vdram_engine.Supervise.counters supervisor)
            .Vdram_engine.Supervise.failures;
      (s, c, ops, r)
    in
    (* Engine construction, the workload and the store flush are all
       inside the timed window: the disk passes must pay for their
       snapshot load and save, or cold vs warm would be a fiction. *)
    let timed mk =
      Gc.full_major ();
      let t0 = now () in
      let engine = mk () in
      let r = workload engine in
      Engine.flush_store engine;
      (engine, r, now () -. t0)
    in
    let _serial_engine, serial_result, serial_s =
      timed (fun () -> Engine.create ~jobs:1 ())
    in
    let parallel_engine, parallel_result, parallel_s =
      timed (fun () -> Engine.create ~jobs:parallel_jobs ())
    in
    let store () = Engine.store_open ~dir:cache_dir () in
    (* Disk timings are at the mercy of writeback and unmarshal-GC
       noise, so each disk pass reports the best of two repetitions
       (the clear keeps every cold repetition honestly cold). *)
    let cold_pass () =
      Store.clear (store ());
      timed (fun () -> Engine.create ~jobs:1 ~store:(store ()) ())
    in
    let _e, cold_result, cold_t1 = cold_pass () in
    let _e, cold_result2, cold_t2 = cold_pass () in
    let disk_cold_s = Float.min cold_t1 cold_t2 in
    let warm_pass () =
      timed (fun () -> Engine.create ~jobs:1 ~store:(store ()) ())
    in
    let w1, warm_result, warm_t1 = warm_pass () in
    let w2, warm_result2, warm_t2 = warm_pass () in
    let warm_engine, disk_warm_s =
      if warm_t2 <= warm_t1 then (w2, warm_t2) else (w1, warm_t1)
    in
    (* Fifth pass: the delta-extraction mechanism under its production
       workload.  The same sensitivity-shaped batch every driver runs
       — every lens perturbed around the nominal, at four variation
       widths so no two configurations repeat — runs cold on two
       fresh single-domain engines, one with the delta path disabled
       and one with it enabled (the default), and their
       extraction-stage compute times are compared.  The full
       pipeline (pattern mix included) stays in the loop on purpose:
       a full extraction's working set contends with the mix stage's
       between items exactly as it does in a real sweep, which is
       part of what the delta path's smaller footprint buys. *)
    let delta_workload engine =
      let supervisor =
        Vdram_engine.Supervise.create ~faults:Vdram_engine.Faults.none ()
      in
      let rs =
        List.map
          (fun variation ->
            Vdram_analysis.Sensitivity.run ~engine ~supervisor ~variation cfg)
          [ 0.05; 0.10; 0.15; 0.20 ]
      in
      total_failures :=
        !total_failures
        + (Vdram_engine.Supervise.counters supervisor)
            .Vdram_engine.Supervise.failures;
      rs
    in
    let delta_pass delta =
      (* Compact, not just a full major: by the fifth pass the heap
         has grown through four workloads, and fragmentation makes
         minor collections — some of which inevitably land inside the
         microsecond extraction windows — cost different amounts on
         different reps.  Starting every rep from a compacted heap is
         what makes the reps comparable at all. *)
      Gc.compact ();
      let t0 = now () in
      let engine = Engine.create ~jobs:1 ~delta () in
      let r = delta_workload engine in
      let wall = now () -. t0 in
      let ext_ns =
        (Engine.stats engine).Engine.extraction_stats.Engine.time_ns
      in
      (engine, r, wall, ext_ns)
    in
    (* Best of five, reps interleaved full/incremental: extraction
       windows are short enough on a loaded single-core box that one
       stray scheduling gap or GC pause in a rep visibly skews the
       ratio, and running all of one side's reps back to back lets a
       slow epoch (writeback, frequency dip, heap growth) land on one
       side only.  Pairing the reps makes both sides sample the same
       process epochs; the minimum over five is stable where two or
       three were not, and every rep's result still has to agree bit
       for bit. *)
    let delta_reps = 5 in
    let reps =
      List.init delta_reps (fun _ -> (delta_pass false, delta_pass true))
    in
    let best side =
      let picked =
        List.fold_left
          (fun best rep ->
            let _, _, _, bx = best and _, _, _, x = rep in
            if x < bx then rep else best)
          (side (List.hd reps))
          (List.map side (List.tl reps))
      in
      let wall =
        List.fold_left
          (fun a rep ->
            let _, _, w, _ = side rep in
            Float.min a w)
          infinity reps
      in
      let e, r, _, x = picked in
      let _, r0, _, _ = side (List.hd reps) in
      ( (e, r, wall, x),
        List.for_all
          (fun rep ->
            let _, rr, _, _ = side rep in
            rr = r0)
          reps )
    in
    let (_full_e, full_r, full_wall_s, full_ext_ns), full_stable =
      best fst
    in
    let (incr_e, incr_r, incr_wall_s, incr_ext_ns), incr_stable =
      best snd
    in
    let delta_identical = full_stable && incr_stable && full_r = incr_r in
    let delta_speedup =
      float_of_int full_ext_ns /. Float.max 1.0 (float_of_int incr_ext_ns)
    in
    let dstats = (Engine.stats incr_e).Engine.delta_stats in
    let delta_dirtied_total =
      List.fold_left
        (fun acc (_, n) -> acc + n)
        0 dstats.Engine.groups_dirtied
    in
    (* The determinism contract, checked structurally: every float of
       every run must agree bit for bit. *)
    let identical =
      serial_result = parallel_result
      && serial_result = cold_result
      && serial_result = cold_result2
      && serial_result = warm_result
      && serial_result = warm_result2
    in
    let speedup = serial_s /. Float.max 1e-9 parallel_s in
    let disk_speedup = disk_cold_s /. Float.max 1e-9 disk_warm_s in
    let warm_stats = Engine.stats warm_engine in
    let warm_ext_hits = warm_stats.Engine.extraction_stats.Engine.hits in
    let warm_mix_hits = warm_stats.Engine.mix_stats.Engine.hits in
    let stage name (s : Engine.stage_stats) =
      Printf.sprintf
        "{\"stage\":%S,\"hits\":%d,\"misses\":%d,\"time_ms\":%.3f}" name
        s.Engine.hits s.Engine.misses
        (float_of_int s.Engine.time_ns /. 1e6)
    in
    let stage_list engine =
      let st = Engine.stats engine in
      String.concat ","
        [
          stage "geometry" st.Engine.geometry_stats;
          stage "extraction" st.Engine.extraction_stats;
          stage "mix" st.Engine.mix_stats;
        ]
    in
    let machine_class =
      Printf.sprintf "%s-%dcore"
        (String.lowercase_ascii Sys.os_type)
        (Domain.recommended_domain_count ())
    in
    let json =
      Printf.sprintf
        "{\n\
        \  \"device\": %S,\n\
        \  \"workload\": \"sensitivity + corners(%d samples) + op \
         energies\",\n\
        \  \"machine_class\": %S,\n\
        \  \"jobs_serial\": 1,\n\
        \  \"jobs_parallel\": %d,\n\
        \  \"serial_s\": %.6f,\n\
        \  \"parallel_s\": %.6f,\n\
        \  \"speedup\": %.3f,\n\
        \  \"disk_cold_s\": %.6f,\n\
        \  \"disk_warm_s\": %.6f,\n\
        \  \"disk_speedup\": %.3f,\n\
        \  \"delta_full_s\": %.6f,\n\
        \  \"delta_incr_s\": %.6f,\n\
        \  \"delta_full_extraction_ms\": %.3f,\n\
        \  \"delta_incr_extraction_ms\": %.3f,\n\
        \  \"delta_speedup\": %.3f,\n\
        \  \"delta_identical\": %b,\n\
        \  \"delta_attempts\": %d,\n\
        \  \"delta_fallbacks\": %d,\n\
        \  \"delta_groups_spliced\": %d,\n\
        \  \"delta_groups_dirtied\": %d,\n\
        \  \"warm_extraction_hits\": %d,\n\
        \  \"warm_mix_hits\": %d,\n\
        \  \"cache_dir\": %S,\n\
        \  \"identical_output\": %b,\n\
        \  \"failures\": %d,\n\
        \  \"faults_enabled\": %b,\n\
        \  \"parallel_stages\": [%s],\n\
        \  \"warm_stages\": [%s]\n\
         }\n"
        cfg.Config.name samples machine_class parallel_jobs serial_s
        parallel_s speedup disk_cold_s disk_warm_s disk_speedup full_wall_s
        incr_wall_s
        (float_of_int full_ext_ns /. 1e6)
        (float_of_int incr_ext_ns /. 1e6)
        delta_speedup delta_identical dstats.Engine.delta_attempts
        dstats.Engine.delta_fallbacks dstats.Engine.groups_spliced
        delta_dirtied_total warm_ext_hits warm_mix_hits cache_dir identical
        !total_failures faults_enabled
        (stage_list parallel_engine)
        (stage_list warm_engine)
    in
    Out_channel.with_open_text out (fun oc ->
        Out_channel.output_string oc json);
    Format.printf
      "device %s (%s) | serial %.3f s | parallel (%d jobs) %.3f s | \
       speedup %.2fx@.disk cold %.3f s | disk warm %.3f s | disk speedup \
       %.2fx | warm hits %d ext / %d mix@.delta extraction %.2f ms full \
       -> %.2f ms incremental | delta speedup %.2fx | %d attempts, %d \
       fallbacks, %d spliced / %d dirtied groups@.identical %b | delta \
       identical %b | wrote %s@."
      cfg.Config.name machine_class serial_s parallel_jobs parallel_s
      speedup disk_cold_s disk_warm_s disk_speedup warm_ext_hits
      warm_mix_hits
      (float_of_int full_ext_ns /. 1e6)
      (float_of_int incr_ext_ns /. 1e6)
      delta_speedup dstats.Engine.delta_attempts
      dstats.Engine.delta_fallbacks dstats.Engine.groups_spliced
      delta_dirtied_total identical delta_identical out;
    if identical && delta_identical then `Ok ()
    else if not identical then
      fail "parallel/disk outputs differ from the serial output"
    else fail "delta-extraction output differs from the full extraction"
  in
  let doc =
    "Benchmark the staged engine: the sensitivity + corners workload run \
     serially, on the domain pool, and twice against the persistent disk \
     cache (cold, then warm), plus a delta pass comparing full versus \
     incremental extraction on a sensitivity-shaped workload, with \
     per-stage cache counters, written as JSON."
  in
  Cmd.v (Cmd.info "bench-analysis" ~doc)
    Term.(ret (const run $ jobs_arg $ samples $ out $ bench_cache_dir))

(* ----- export ------------------------------------------------------- *)

let export_cmd =
  let outdir =
    Arg.(
      value & opt string "."
      & info [ "outdir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run node outdir =
    let w name contents =
      let path = Filename.concat outdir name in
      Vdram_analysis.Csv.write_file path contents;
      Format.printf "wrote %s@." path
    in
    w "trends.csv" (Vdram_analysis.Csv.trends (Vdram_analysis.Trends.all ()));
    w "fig8_ddr2.csv"
      (Vdram_analysis.Csv.verification (Vdram_datasheets.Compare.fig8 ()));
    w "fig9_ddr3.csv"
      (Vdram_analysis.Csv.verification (Vdram_datasheets.Compare.fig9 ()));
    w "sensitivity.csv"
      (Vdram_analysis.Csv.sensitivity
         (Vdram_analysis.Sensitivity.run
            (Config.commodity ~node ())));
    `Ok ()
  in
  let doc = "Export figure data as CSV for external plotting." in
  Cmd.v (Cmd.info "export" ~doc) Term.(ret (const run $ node $ outdir))

(* ----- channel ------------------------------------------------------ *)

let channel_cmd =
  let utilization =
    Arg.(
      value & opt float 0.5
      & info [ "utilization" ] ~docv:"FRACTION"
          ~doc:"Channel data-bus utilization (0..1).")
  in
  let capacity_gb =
    Arg.(
      value & opt float 8.0
      & info [ "capacity-gb" ] ~docv:"GB" ~doc:"DIMM capacity in GB.")
  in
  let run node utilization capacity_gb =
    let cfg = Config.commodity ~node () in
    let ch = Vdram_link.Channel.for_config cfg in
    Format.printf "channel: %a@." Vdram_link.Channel.pp ch;
    Format.printf "link power at %.0f%%: %s (%.2f pJ/bit)@.@."
      (utilization *. 100.0)
      (Vdram_units.Si.format_eng ~unit_symbol:"W"
         (Vdram_link.Channel.power ch ~utilization))
      (Vdram_link.Channel.energy_per_bit ch ~utilization *. 1e12);
    let capacity_bits = capacity_gb *. 8.0 *. (2.0 ** 30.0) in
    Format.printf "DIMM organizations (%.0f GB, %.0f%% utilization):@."
      capacity_gb (utilization *. 100.0);
    List.iter
      (fun r -> Format.printf "  %a@." Vdram_link.Dimm.pp_result r)
      (Vdram_link.Dimm.compare_widths ~node ~capacity_bits
         ~utilization [ 4; 8; 16 ]);
    `Ok ()
  in
  let doc = "Link and DIMM-level power (device + channel)." in
  Cmd.v (Cmd.info "channel" ~doc)
    Term.(ret (const run $ node $ utilization $ capacity_gb))

(* ----- dump -------------------------------------------------------- *)

let dump_cmd =
  let run node density_mbits io_width datarate =
    match load_config ?density_mbits ?io_width ?datarate ~node () with
    | Error e -> fail "%s" e
    | Ok (config, _) ->
      print_string
        (Vdram_dsl.Printer.to_dsl ~pattern:Pattern.paper_example config);
      `Ok ()
  in
  let doc = "Emit the description-language source of a roadmap device." in
  Cmd.v (Cmd.info "dump" ~doc)
    Term.(ret (const run $ node $ density_mbits $ io_width $ datarate))

(* ----- serve ------------------------------------------------------- *)

let serve_cmd =
  let module Server = Vdram_serve.Server in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv).")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Listen on a TCP socket (port 0 picks a free port).")
  in
  let max_inflight =
    Arg.(
      value & opt int 8
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Concurrent computations; excess requests are rejected \
                with an $(i,overloaded) error and a retry-after hint.")
  in
  let max_clients =
    Arg.(
      value & opt int 64
      & info [ "max-clients" ] ~docv:"N"
          ~doc:"Concurrent connections; excess connections are turned \
                away.")
  in
  let max_frame_bytes =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-frame-bytes" ] ~docv:"BYTES"
          ~doc:"Longest accepted request line; longer frames are \
                rejected as bad frames and the stream resynchronises \
                at the next newline.")
  in
  let drain_grace =
    Arg.(
      value & opt float 5.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:"How long a drain (SIGINT/SIGTERM) waits for in-flight \
                requests before force-aborting them.")
  in
  let run socket tcp max_inflight max_clients max_frame_bytes drain_grace
      mk_engine timings =
    let listener =
      match (socket, tcp) with
      | Some _, Some _ -> Error "--socket and --tcp are mutually exclusive"
      | Some path, None -> Ok (Server.Unix_path path)
      | None, Some hostport ->
        (match String.rindex_opt hostport ':' with
         | None -> Error "expected --tcp HOST:PORT"
         | Some i ->
           let host = String.sub hostport 0 i in
           let host = if host = "" then "127.0.0.1" else host in
           (match
              int_of_string_opt
                (String.sub hostport (i + 1)
                   (String.length hostport - i - 1))
            with
            | Some port when port >= 0 && port < 65536 ->
              Ok (Server.Tcp (host, port))
            | _ -> Error "expected --tcp HOST:PORT"))
      | None, None -> Error "pick a listener: --socket PATH or --tcp HOST:PORT"
    in
    match listener with
    | Error e -> fail "serve: %s" e
    | Ok listener ->
      let engine = mk_engine () in
      let cfg =
        {
          (Server.default_config listener) with
          Server.max_inflight;
          max_clients;
          max_frame_bytes;
          drain_grace;
        }
      in
      (match Server.create ~engine cfg with
       | Error e -> fail "serve: %s" e
       | Ok server ->
         Vdram_serve.Signals.install (fun _ -> Server.drain server);
         (match Server.address server with
          | Unix.ADDR_UNIX path ->
            Format.eprintf "vdram serve: listening on %s@." path
          | Unix.ADDR_INET (addr, port) ->
            Format.eprintf "vdram serve: listening on %s:%d@."
              (Unix.string_of_inet_addr addr)
              port);
         Server.serve server;
         Format.eprintf "vdram serve: drained@.";
         report_timings timings engine None;
         `Ok ())
  in
  let doc =
    "Persistent evaluation daemon over line-delimited JSON (see \
     doc/SERVE.md)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ socket $ tcp $ max_inflight $ max_clients
       $ max_frame_bytes $ drain_grace $ engine_term $ timings_arg))

let () =
  let doc = "flexible analytical DRAM power model (Vogelsang, MICRO 2010)" in
  let info = Cmd.info "vdram" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ power_cmd; verify_cmd; sensitivity_cmd; trends_cmd; schemes_cmd;
            simulate_cmd; corners_cmd; states_cmd; ablate_cmd;
            bench_analysis_cmd; export_cmd; validate_cmd; lint_cmd;
            check_cmd; advise_cmd; channel_cmd; dump_cmd; serve_cmd ]))
