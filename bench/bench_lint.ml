(* Benchmark of the lint pipeline: times a full `vdram lint` run —
   parse, dimensional analysis, accumulating elaboration and every
   semantic pass — over each shipped example description, plus the
   SARIF rendering of the combined reports, and writes the estimates
   to BENCH_lint.json. *)

open Bechamel
open Toolkit

module Lint = Vdram_lint.Lint

let examples_dir = "examples"

let examples () =
  if Sys.file_exists examples_dir && Sys.is_directory examples_dir then
    Sys.readdir examples_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dram")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat examples_dir f in
           (f, In_channel.with_open_text path In_channel.input_all))
  else []

let silent f () =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ()

let tests sources =
  let lint_one (name, source) =
    Test.make ~name:("lint " ^ name)
      (Staged.stage (fun () -> ignore (Lint.run ~file:name source)))
  in
  let all_reports () = List.map (fun (n, s) -> Lint.run ~file:n s) sources in
  Test.make_grouped ~name:"lint"
    (List.map lint_one sources
    @ [
        Test.make ~name:"lint all examples"
          (Staged.stage (fun () -> ignore (all_reports ())));
        Test.make ~name:"render sarif"
          (let reports = all_reports () in
           Staged.stage (fun () -> ignore (Lint.to_sarif reports)));
        Test.make ~name:"render text"
          (let reports = all_reports () in
           Staged.stage
             (silent (fun ppf ->
                  List.iter (fun r -> Lint.pp_text ppf r) reports)));
      ])

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let () =
  let sources = examples () in
  if sources = [] then
    print_endline "bench_lint: no examples/*.dram found, nothing to time"
  else begin
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
    in
    let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (tests sources) in
    let results =
      Analyze.all
        (Analyze.ols ~r_square:false ~bootstrap:0
           ~predictors:[| Measure.run |])
        Instance.monotonic_clock raw
    in
    let rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
      |> List.sort compare
    in
    let estimates =
      List.filter_map
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ ns ] -> Some (name, ns)
          | _ -> None)
        rows
    in
    Printf.printf "lint benchmark over %d example descriptions\n"
      (List.length sources);
    List.iter
      (fun (name, ns) ->
        Printf.printf "  %-45s %12.1f us/run\n" name (ns /. 1e3))
      estimates;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"benchmark\":\"lint\",\"unit\":\"ns/run\",";
    Printf.bprintf buf "\"examples\":%d,\"entries\":[" (List.length sources);
    List.iteri
      (fun i (name, ns) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "{\"name\":";
        add_json_string buf name;
        Printf.bprintf buf ",\"ns_per_run\":%.1f}" ns)
      estimates;
    Buffer.add_string buf "]}\n";
    Out_channel.with_open_text "BENCH_lint.json" (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf));
    print_endline "wrote BENCH_lint.json"
  end
