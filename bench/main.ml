(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation, then times each regeneration with Bechamel.

   Sections:
     table1   - Table I   description parameter inventory
     table2   - Table II  disruptive technology changes
     fig5/6/7 - scaling factor curves
     fig8     - model vs datasheet, 1G DDR2
     fig9     - model vs datasheet, 1G DDR3
     fig10    - power-change Pareto (sensitivity tornado)
     table3   - top-10 sensitivity ranking, three devices
     fig11    - voltage trends
     fig12    - data rate and row timing trends
     fig13    - die area and energy-per-bit trends
     section5 - power-reduction scheme comparison
     section5_sim - controller policy study on the simulator *)

module Node = Vdram_tech.Node
module Params = Vdram_tech.Params
module Scaling = Vdram_tech.Scaling
module Disruptive = Vdram_tech.Disruptive
module Config = Vdram_core.Config
module Pattern = Vdram_core.Pattern
module Model = Vdram_core.Model
module Spec = Vdram_core.Spec
module Devices = Vdram_configs.Devices
module Compare = Vdram_datasheets.Compare
module Idd = Vdram_datasheets.Idd
module Sensitivity = Vdram_analysis.Sensitivity
module Trends = Vdram_analysis.Trends
module Engine = Vdram_engine.Engine

(* One shared engine for every regeneration below: repeated devices hit
   the stage caches, and batches fan out on the domain pool. *)
let engine = Engine.create ()

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table I: DRAM description parameters";
  Printf.printf "technology parameters: %d (paper: 39)\n" Params.count;
  List.iteri
    (fun i (name, _, _) -> Printf.printf "  T%02d %s\n" (i + 1) name)
    Params.fields;
  Printf.printf "  T39 bits accessed per column select line\n";
  Printf.printf
    "plus specification, voltages, physical and signaling floorplan and \
     logic-block groups (see lib/dsl grammar)\n"

let table2 () =
  header "Table II: disruptive DRAM technology changes";
  List.iter
    (fun d -> Format.printf "  %a@." Disruptive.pp d)
    Disruptive.all

let scaling_figure title families =
  header title;
  Printf.printf "%-34s" "node";
  List.iter (fun n -> Printf.printf "%7s" (Node.name n)) Node.all;
  print_newline ();
  List.iter
    (fun (fam, name) ->
      Printf.printf "%-34s" name;
      List.iter
        (fun n -> Printf.printf "%7.3f" (Scaling.factor fam n))
        Node.all;
      print_newline ())
    families

let fig5 () =
  scaling_figure "Figure 5: scaling of technology-related parameters"
    [ (Scaling.F_feature, "minimum feature size (f-shrink)");
      (Scaling.F_tox, "gate oxide thickness");
      (Scaling.F_lmin_logic, "minimum gate length logic");
      (Scaling.F_junction, "junction capacitance");
      (Scaling.F_cell_transistor, "access transistor W/L") ]

let fig6 () =
  scaling_figure "Figure 6: scaling of miscellaneous technology parameters"
    [ (Scaling.F_feature, "minimum feature size (f-shrink)");
      (Scaling.F_c_bitline, "bitline capacitance");
      (Scaling.F_c_cell, "cell capacitance");
      (Scaling.F_wire_cap, "specific wire capacitance");
      (Scaling.F_logic_width, "average logic device width");
      (Scaling.F_stripe_width, "SA / LWD stripe width") ]

let fig7 () =
  scaling_figure "Figure 7: scaling of core device width and length"
    [ (Scaling.F_feature, "minimum feature size (f-shrink)");
      (Scaling.F_core_device, "SA / row circuit device width");
      (Scaling.F_lmin_logic, "SA device length") ]

let verification title rows =
  header title;
  Printf.printf "%-15s %23s  %s\n" "point" "datasheet (mA)" "model (mA)";
  List.iter
    (fun (r : Compare.row) ->
      Printf.printf "%-15s %8.0f .. %5.0f (m %4.0f)"
        (Idd.label r.Compare.point)
        (Idd.min_ma r.Compare.point)
        (Idd.max_ma r.Compare.point)
        (Idd.mean_ma r.Compare.point);
      List.iter
        (fun (node, ma) ->
          let tag =
            if Compare.within_band r.Compare.point ma then "" else "*"
          in
          Printf.printf "  %s:%6.1f%s" node ma tag)
        r.Compare.model_ma;
      print_newline ())
    rows;
  Printf.printf "(* = outside the vendor band +-30%%)\n"

let fig8 () = verification "Figure 8: model vs datasheet, 1G DDR2" (Compare.fig8 ())

let fig9 () = verification "Figure 9: model vs datasheet, 1G DDR3" (Compare.fig9 ())

let datasheet_method () =
  header "Datasheet-method cross-check (paper reference [20])";
  let cfg = Devices.ddr3_2g in
  let spec = cfg.Config.spec in
  Printf.printf "%-14s %12s %12s %8s\n" "pattern" "direct mW"
    "method mW" "delta";
  List.iter
    (fun p ->
      let direct, via_method =
        Vdram_datasheets.Micron_method.cross_check cfg p
      in
      Printf.printf "%-14s %12.1f %12.1f %+7.1f%%\n" p.Pattern.name
        (direct *. 1e3) (via_method *. 1e3)
        (100.0 *. (via_method -. direct) /. direct))
    [ Pattern.idle; Pattern.idd0 spec; Pattern.idd4r spec;
      Pattern.idd4w spec; Pattern.idd7_mixed spec; Pattern.paper_example ];
  Printf.printf
    "(the datasheet methodology applied to the model's own Idd set \
     reproduces the direct computation)\n"

let vendor_spread () =
  header "Vendor spread via Monte-Carlo parameter corners";
  let cfg = Devices.ddr3_1g ~node:Node.N65 () in
  List.iter
    (fun spread ->
      let d =
        Vdram_analysis.Corners.run ~engine ~samples:150 ~spread ~seed:11 cfg
      in
      Format.printf "  %a@." Vdram_analysis.Corners.pp d)
    [ 0.05; 0.10; 0.15 ];
  Printf.printf
    "(the paper attributes the Fig 8/9 datasheet spread to exactly such      technology and implementation differences)\n"

let refresh_study () =
  header "Refresh-interval study (Emma et al., cited in Section V)";
  Format.printf "%a@?" Vdram_schemes.Refresh_study.pp
    (Vdram_schemes.Refresh_study.sweep Devices.ddr3_2g
       ~scales:[ 0.25; 0.5; 1.0; 2.0; 4.0 ])

let fig10 () =
  header "Figure 10: power change under +-20% parameter variation";
  List.iter
    (fun cfg ->
      let s = Sensitivity.run ~engine cfg in
      Printf.printf "\n-- %s (nominal %.1f mW, %s) --\n" cfg.Config.name
        (s.Sensitivity.nominal_power *. 1e3)
        s.Sensitivity.pattern_name;
      List.iteri
        (fun i e ->
          if i < 15 then
            Printf.printf "  %-46s %+7.2f%%\n" e.Sensitivity.lens_name
              e.Sensitivity.span_percent)
        s.Sensitivity.entries)
    Devices.table3_devices

let fig10_chart () =
  header "Figure 10 (chart): tornado for 2G DDR3 55nm";
  let s = Sensitivity.run ~engine Devices.ddr3_2g in
  print_string
    (Vdram_plot.Chart.bars
       (List.map
          (fun e ->
            (e.Sensitivity.lens_name, e.Sensitivity.span_percent))
          (Sensitivity.top 12 s)))

let table3 () =
  header "Table III: top-10 sensitivity ranking";
  let tops =
    List.map
      (fun cfg -> (cfg.Config.name, Sensitivity.top 10 (Sensitivity.run ~engine cfg)))
      Devices.table3_devices
  in
  List.iter (fun (name, _) -> Printf.printf "%-38s" name) tops;
  print_newline ();
  for i = 0 to 9 do
    List.iter
      (fun (_, entries) ->
        match List.nth_opt entries i with
        | Some e ->
          Printf.printf "%2d %-35s" (i + 1)
            (if String.length e.Sensitivity.lens_name > 34 then
               String.sub e.Sensitivity.lens_name 0 34
             else e.Sensitivity.lens_name)
        | None -> Printf.printf "%-38s" "")
      tops;
    print_newline ()
  done

let trend_points = lazy (Trends.all ~engine ())

let fig11 () =
  header "Figure 11: voltage trends";
  let pts = Lazy.force trend_points in
  let volt get label =
    Vdram_plot.Chart.series ~label
      (List.map
         (fun (p : Trends.point) ->
           (float_of_int p.Trends.year, get p))
         pts)
  in
  print_string
    (Vdram_plot.Chart.line ~height:12 ~y_unit:"V"
       [ volt (fun p -> p.Trends.vdd) "Vdd";
         volt (fun p -> p.Trends.vint) "Vint";
         volt (fun p -> p.Trends.vbl) "Vbl";
         volt (fun p -> p.Trends.vpp) "Vpp" ]);
  Printf.printf "%-7s %-5s %5s %5s %5s %5s\n" "node" "std" "Vdd" "Vint"
    "Vbl" "Vpp";
  List.iter
    (fun (p : Trends.point) ->
      Printf.printf "%-7s %-5s %5.2f %5.2f %5.2f %5.2f\n"
        (Node.name p.Trends.node)
        (Node.standard_name p.Trends.standard)
        p.Trends.vdd p.Trends.vint p.Trends.vbl p.Trends.vpp)
    (Lazy.force trend_points)

let fig12 () =
  header "Figure 12: data rate and row timing trends";
  Printf.printf "%-7s %9s %9s %7s %7s\n" "node" "Mbps/pin" "core MHz"
    "tRC ns" "tRCD ns";
  List.iter
    (fun (p : Trends.point) ->
      Printf.printf "%-7s %9.0f %9.0f %7.0f %7.1f\n"
        (Node.name p.Trends.node)
        (p.Trends.datarate /. 1e6)
        (p.Trends.core_frequency /. 1e6)
        (p.Trends.trc *. 1e9) (p.Trends.trcd *. 1e9))
    (Lazy.force trend_points)

let fig13 () =
  header "Figure 13: die area and energy per bit";
  Printf.printf "%-7s %5s %9s %9s %12s %12s\n" "node" "year" "die mm2"
    "Mbit" "pJ/bit Idd4" "pJ/bit Idd7";
  List.iter
    (fun (p : Trends.point) ->
      Printf.printf "%-7s %5d %9.1f %9.0f %12.1f %12.1f\n"
        (Node.name p.Trends.node)
        p.Trends.year
        (p.Trends.die_area *. 1e6)
        (p.Trends.density_bits /. (2.0 ** 20.0))
        (p.Trends.energy_per_bit_idd4 *. 1e12)
        (p.Trends.energy_per_bit_idd7 *. 1e12))
    (Lazy.force trend_points);
  let pts = Lazy.force trend_points in
  let early =
    Trends.reduction_factor pts (fun n -> Node.index n <= Node.index Node.N44)
  and late =
    Trends.reduction_factor pts (fun n -> Node.index n >= Node.index Node.N44)
  in
  Printf.printf
    "\nenergy/bit reduction per generation: %.2fx (170->44nm, paper ~1.5x) \
     then %.2fx (44->16nm forecast, paper ~1.2x)\n"
    early late;
  print_newline ();
  print_string
    (Vdram_plot.Chart.line ~height:14 ~log_y:true ~y_unit:"pJ/bit (log)"
       [ Vdram_plot.Chart.series ~label:"energy per bit, Idd7-like"
           (List.map
              (fun (p : Trends.point) ->
                ( float_of_int p.Trends.year,
                  p.Trends.energy_per_bit_idd7 *. 1e12 ))
              pts);
         Vdram_plot.Chart.series ~label:"energy per bit, Idd4 (row open)"
           (List.map
              (fun (p : Trends.point) ->
                ( float_of_int p.Trends.year,
                  p.Trends.energy_per_bit_idd4 *. 1e12 ))
              pts) ])

let section5 () =
  header "Section V: power-reduction scheme comparison (2G DDR3 55nm)";
  let results = Vdram_schemes.Evaluate.run_all ~engine Devices.ddr3_2g in
  Format.printf "%a@." Vdram_schemes.Evaluate.pp_table results;
  let combo =
    Vdram_schemes.Evaluate.run_combined ~engine Devices.ddr3_2g
      [ Vdram_schemes.Scheme.selective_bitline_activation;
        Vdram_schemes.Scheme.segmented_data_lines;
        Vdram_schemes.Scheme.low_voltage ]
  in
  Format.printf "@.combined (SBA + segmentation + low voltage):@.%a@."
    Vdram_schemes.Evaluate.pp_result combo;
  List.iter
    (fun r -> Format.printf "@.%a@." Vdram_schemes.Evaluate.pp_result r)
    results

let section5_sim () =
  header "Section V (system side): controller policy study (Hur et al.)";
  let cfg = Devices.ddr3_1g ~node:Node.N65 () in
  let spec = cfg.Config.spec in
  let base =
    Vdram_sim.Trace.uniform
      ~rng:(Vdram_sim.Trace.rng 42)
      ~requests:4000 ~arrival_gap:10 ~banks:spec.Spec.banks ~rows:1024
      ~columns:128 ~write_fraction:0.3
  in
  let gappy =
    Vdram_sim.Trace.idle_gaps ~rng:(Vdram_sim.Trace.rng 1) base ~burst:64
      ~gap:6000
  in
  Printf.printf "%-42s %9s %9s %10s\n" "policy" "mW" "pJ/bit" "lat ns";
  List.iter
    (fun run ->
      Printf.printf "%-42s %9.1f %9.1f %10.1f\n" run.Vdram_sim.Sim.policy
        (run.Vdram_sim.Sim.energy.Vdram_sim.Energy_model.average_power *. 1e3)
        (run.Vdram_sim.Sim.energy.Vdram_sim.Energy_model.energy_per_bit
        *. 1e12)
        (run.Vdram_sim.Sim.average_latency *. 1e9))
    (Vdram_sim.Sim.compare_policies cfg gappy
       [ (Vdram_sim.Controller.Open_page, Vdram_sim.Controller.No_power_down);
         (Vdram_sim.Controller.Closed_page, Vdram_sim.Controller.No_power_down);
         (Vdram_sim.Controller.Open_page,
          Vdram_sim.Controller.Precharge_power_down 50);
         (Vdram_sim.Controller.Open_page,
          Vdram_sim.Controller.Precharge_power_down 500) ])

let ablations () =
  header "Ablations: the design choices behind the commodity architecture";
  let node = Node.N55 in
  let show title pts =
    Printf.printf "\n-- %s --\n" title;
    Format.printf "%a@?" Vdram_analysis.Ablation.pp pts
  in
  show "activation granularity (motivates Section V)"
    (Vdram_analysis.Ablation.page_size ~engine ~node
       ~pages:[ 2048; 4096; 8192; 16384 ] ());
  show "cells per bitline (energy vs array efficiency)"
    (Vdram_analysis.Ablation.bitline_length ~engine ~node
       ~bits:[ 256; 512; 1024 ] ());
  show "open vs folded bitline (Table II's 6F2 step)"
    (Vdram_analysis.Ablation.bitline_style ~engine ~node ());
  show "prefetch at fixed pin rate (the low-cost-core choice)"
    (Vdram_analysis.Ablation.prefetch ~engine ~node ~prefetches:[ 2; 4; 8; 16 ] ());
  show "cells per local wordline (segmentation is an area choice)"
    (Vdram_analysis.Ablation.subarray_height ~engine ~node
       ~bits:[ 256; 512; 1024 ] ())

let architectures () =
  header "Architecture variants (Section II) and standby states";
  let node = Node.N55 in
  let devices =
    [ Devices.ddr3_2g;
      Vdram_configs.Variants.mobile ~node ();
      Vdram_configs.Variants.graphics ~node () ]
  in
  Printf.printf "%-28s %10s %10s %10s %12s\n" "device" "standby" "pwrdown"
    "selfref" "Idd4R pJ/bit";
  List.iter
    (fun cfg ->
      let epb =
        Option.value ~default:0.0
          (Model.energy_per_bit cfg (Pattern.idd4r cfg.Config.spec))
      in
      Printf.printf "%-28s %8.1f mW %7.1f mW %7.1f mW %10.1f\n"
        cfg.Config.name
        (Model.state_power cfg Model.Precharge_standby *. 1e3)
        (Model.state_power cfg Model.Power_down *. 1e3)
        (Model.state_power cfg Model.Self_refresh *. 1e3)
        (epb *. 1e12))
    devices;
  (* Where the power goes, per category: the paper's array-to-logic
     shift, old device vs future device. *)
  Printf.printf "\npower by category (Idd7-like pattern):\n";
  let reports =
    Engine.map_jobs engine
      (fun cfg -> Engine.eval engine cfg (Pattern.idd7_mixed cfg.Config.spec))
      Devices.table3_devices
  in
  List.iter2
    (fun cfg r ->
      Printf.printf "%-24s" cfg.Config.name;
      List.iter
        (fun (c, w) ->
          Printf.printf "  %s %.0f%%"
            (Vdram_core.Report.category_name c)
            (100.0 *. w /. r.Vdram_core.Report.power))
        (Vdram_core.Report.by_category r);
      print_newline ())
    Devices.table3_devices reports

let system_view () =
  header "System view: device + link (the paper's excluded Vddq piece)";
  Printf.printf "%-6s %-18s %12s\n" "era" "termination" "link pJ/bit";
  List.iter
    (fun (std, rate) ->
      let t = Vdram_link.Termination.for_standard std in
      Printf.printf "%-6s %-18s %12.2f\n"
        (Node.standard_name std)
        (Vdram_link.Termination.scheme_name
           t.Vdram_link.Termination.scheme)
        (Vdram_link.Termination.energy_per_bit t ~bitrate:rate *. 1e12))
    [ (Node.Sdr, 166e6); (Node.Ddr, 400e6); (Node.Ddr2, 800e6);
      (Node.Ddr3, 1333e6); (Node.Ddr4, 2667e6); (Node.Ddr5, 5333e6) ];
  Printf.printf "\n8 GB DDR3-1333 DIMM at 50%% utilization:\n";
  List.iter
    (fun r -> Format.printf "  %a@." Vdram_link.Dimm.pp_result r)
    (Vdram_link.Dimm.compare_widths ~node:Node.N55
       ~capacity_bits:(64.0 *. (2.0 ** 30.0))
       [ 4; 8; 16 ])

(* ------------------------------------------------------------------ *)
(* Bechamel timing: one Test per table/figure regeneration. *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let silent f () =
    (* Regenerate the artifact without printing. *)
    f ()
  in
  let ddr3 = Devices.ddr3_1g ~node:Node.N65 () in
  let trace =
    Vdram_sim.Trace.uniform
      ~rng:(Vdram_sim.Trace.rng 7)
      ~requests:500 ~arrival_gap:8 ~banks:8 ~rows:256 ~columns:64
      ~write_fraction:0.3
  in
  let dsl_source = Vdram_dsl.Printer.to_dsl ddr3 in
  let tests =
    [
      Test.make ~name:"table1+2: parameter/change inventory"
        (Staged.stage
           (silent (fun () ->
                ignore (List.length Params.fields);
                ignore (List.length Disruptive.all))));
      Test.make ~name:"fig5-7: scaling factors"
        (Staged.stage
           (silent (fun () ->
                List.iter
                  (fun (fam, _) ->
                    List.iter
                      (fun n -> ignore (Scaling.factor fam n))
                      Node.all)
                  Scaling.families)));
      Test.make ~name:"fig8: DDR2 verification rows"
        (Staged.stage (silent (fun () -> ignore (Compare.fig8 ()))));
      Test.make ~name:"fig9: DDR3 verification rows"
        (Staged.stage (silent (fun () -> ignore (Compare.fig9 ()))));
      Test.make ~name:"fig10/table3: one device tornado"
        (Staged.stage
           (silent (fun () -> ignore (Sensitivity.run ddr3))));
      Test.make ~name:"fig11-13: one trend point"
        (Staged.stage (silent (fun () -> ignore (Trends.point Node.N55))));
      Test.make ~name:"section5: scheme evaluation"
        (Staged.stage
           (silent (fun () ->
                ignore
                  (Vdram_schemes.Evaluate.run Devices.ddr3_2g
                     Vdram_schemes.Scheme.low_voltage))));
      Test.make ~name:"section5_sim: 500-request simulation"
        (Staged.stage
           (silent (fun () -> ignore (Vdram_sim.Controller.run ddr3 trace))));
      Test.make ~name:"core: one pattern power evaluation"
        (Staged.stage
           (silent (fun () ->
                ignore
                  (Model.pattern_power ddr3
                     (Pattern.idd7_mixed ddr3.Config.spec)))));
      Test.make ~name:"ablations: one design sweep"
        (Staged.stage
           (silent (fun () ->
                ignore
                  (Vdram_analysis.Ablation.bitline_style ~node:Node.N55 ()))));
      Test.make ~name:"architectures: standby comparison"
        (Staged.stage
           (silent (fun () ->
                ignore
                  (Vdram_configs.Variants.standby_comparison
                     [ Devices.ddr3_2g ]))));
      Test.make ~name:"dsl: parse + elaborate a description"
        (Staged.stage
           (silent (fun () ->
                match Vdram_dsl.Elaborate.load_string dsl_source with
                | Ok _ -> ()
                | Error _ -> assert false)));
    ]
  in
  let grouped = Test.make_grouped ~name:"vdram" tests in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0
         ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  header "Bechamel: time per regeneration";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
        Printf.printf "  %-45s %12.1f us/run\n" name (ns /. 1e3)
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    (List.sort compare rows)

let () =
  table1 ();
  table2 ();
  fig5 ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  fig10 ();
  fig10_chart ();
  table3 ();
  fig11 ();
  fig12 ();
  fig13 ();
  section5 ();
  section5_sim ();
  datasheet_method ();
  vendor_spread ();
  refresh_study ();
  ablations ();
  architectures ();
  system_view ();
  bechamel_suite ();
  header "Engine cache counters (whole run)";
  Format.printf "%a@." Engine.pp_stats (Engine.stats engine);
  print_newline ()
